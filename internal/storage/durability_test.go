package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/relation"
)

// stubSyncs replaces the fsync hooks with no-ops for the duration of a
// test: the crash-point harnesses reopen stores thousands of times and
// only exercise replay logic, not the disk. Restores on cleanup.
func stubSyncs(t *testing.T) {
	t.Helper()
	sf, sd := syncFile, syncDir
	syncFile = func(*os.File) error { return nil }
	syncDir = func(string) error { return nil }
	t.Cleanup(func() { syncFile, syncDir = sf, sd })
}

// captureWarns redirects the storage warning sink into a buffer.
func captureWarns(t *testing.T) *bytes.Buffer {
	t.Helper()
	var mu sync.Mutex
	buf := &bytes.Buffer{}
	old := warnf
	warnf = func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(buf, format+"\n", args...)
		mu.Unlock()
	}
	t.Cleanup(func() { warnf = old })
	return buf
}

// catalogDump renders the whole catalog's visible state: relation name
// -> tuples in id order. Two catalogs with equal dumps are observably
// identical to every query.
func catalogDump(cat *relation.Catalog) map[string][]relation.Tuple {
	out := map[string][]relation.Tuple{}
	for _, name := range cat.Names() {
		tab, _ := cat.Lookup(name)
		out[name] = tab.Tuples()
	}
	return out
}

// writeFrame appends one CRC frame around payload.
func writeFrame(t *testing.T, w *os.File, payload []byte) {
	t.Helper()
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// ------------------------------------------------------ binary codec

func TestBinaryRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{LSN: 1, Tx: 1, Kind: recInsert, Rel: "r", Seq: "hello"},
		{LSN: 2, Tx: 1, Kind: recInsertAt, Rel: "r", ID: 7, Seq: "x", Vec: "[1.5,-2.25]",
			Attrs: map[string]string{"lang": "en", "k": ""}},
		{LSN: 3, Tx: 1, Kind: recUpdateAt, Rel: "ø/δ", ID: 7, NewID: 9, Seq: strings.Repeat("s", 300)},
		{LSN: 4, Tx: 1, Kind: recCommit, N: 3, GID: 12, Parts: 3},
		{LSN: 5, Kind: recGlobal, GID: 12, Parts: 3},
		{LSN: 1 << 60, Tx: 1 << 40, Kind: recDelete, Rel: "r", ID: 1 << 30},
	}
	for _, want := range recs {
		payload, err := encodeRecord(nil, &want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		var got walRecord
		if err := decodeRecord(payload, &got); err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		// Every truncated prefix must error, never mis-decode.
		for cut := 0; cut < len(payload); cut++ {
			var r walRecord
			if err := decodeRecord(payload[:cut], &r); err == nil {
				t.Fatalf("truncated payload (%d/%d bytes) decoded silently", cut, len(payload))
			}
		}
		// Trailing garbage must error too.
		var r walRecord
		if err := decodeRecord(append(append([]byte(nil), payload...), 0x00), &r); err == nil {
			t.Fatal("payload with trailing bytes decoded silently")
		}
	}
	if _, err := encodeRecord(nil, &walRecord{Kind: "nonsense"}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}

// TestJSONBinaryReplayIdentity writes the same records once as legacy
// JSON payloads and once through the binary codec and checks both logs
// replay to identical catalogs — then appends to the JSON log through a
// live store (which writes binary) and checks the mixed log replays
// whole. This is the format-migration contract: old logs keep working,
// and a log may switch encodings mid-file.
func TestJSONBinaryReplayIdentity(t *testing.T) {
	stubSyncs(t)
	recs := []walRecord{
		{LSN: 1, Tx: 1, Kind: recInsert, Rel: "w", Seq: "alpha", Attrs: map[string]string{"n": "0"}},
		{LSN: 2, Tx: 1, Kind: recInsert, Rel: "w", Seq: "beta", Vec: "[0.5,1.25]"},
		{LSN: 3, Tx: 1, Kind: recCommit, N: 2},
		{LSN: 4, Tx: 2, Kind: recDelete, Rel: "w", ID: 0},
		{LSN: 5, Tx: 2, Kind: recCommit, N: 1},
		{LSN: 6, Tx: 3, Kind: recUpdate, Rel: "w", ID: 1, Seq: "gamma"},
		{LSN: 7, Tx: 3, Kind: recCommit, N: 1},
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "json.log")
	binPath := filepath.Join(dir, "bin.log")
	jf, _ := os.Create(jsonPath)
	bf, _ := os.Create(binPath)
	for i := range recs {
		jp, err := json.Marshal(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		writeFrame(t, jf, jp)
		bp, err := encodeRecord(nil, &recs[i])
		if err != nil {
			t.Fatal(err)
		}
		writeFrame(t, bf, bp)
	}
	jf.Close()
	bf.Close()

	jcat := relation.NewCatalog()
	jst, err := Open(jsonPath, jcat)
	if err != nil {
		t.Fatal(err)
	}
	jst.SetSync(false)
	bcat := relation.NewCatalog()
	bst, err := Open(binPath, bcat)
	if err != nil {
		t.Fatal(err)
	}
	bst.Close()
	if jst.Metrics().ReplayedTx != 3 {
		t.Fatalf("JSON log replayed %d tx, want 3", jst.Metrics().ReplayedTx)
	}
	jd, bd := catalogDump(jcat), catalogDump(bcat)
	if !reflect.DeepEqual(jd, bd) {
		t.Fatalf("JSON and binary replay diverged:\n%v\n%v", jd, bd)
	}

	// Continue the JSON log with a live (binary-writing) store.
	if _, err := jst.Insert("w", "delta", nil); err != nil {
		t.Fatal(err)
	}
	want := catalogDump(jcat)
	jst.Close()
	cat2 := relation.NewCatalog()
	st2, err := Open(jsonPath, cat2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := catalogDump(cat2); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed JSON+binary log replay diverged:\n%v\n%v", got, want)
	}
}

// ------------------------------------------------- satellite bugfixes

// TestTornTailTruncationIsDurable pins the torn-tail resurrection fix:
// recovering from a corrupt tail must fsync the truncated file (so a
// machine crash cannot bring the bytes back), and creating a log must
// fsync the parent directory (so the crash cannot lose the file name).
func TestTornTailTruncationIsDurable(t *testing.T) {
	warns := captureWarns(t)
	var fileSyncs, dirSyncs int
	sf, sd := syncFile, syncDir
	syncFile = func(f *os.File) error { fileSyncs++; return sf(f) }
	syncDir = func(dir string) error { dirSyncs++; return sd(dir) }
	t.Cleanup(func() { syncFile, syncDir = sf, sd })

	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	cat := relation.NewCatalog()
	st, err := Open(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	if dirSyncs == 0 {
		t.Error("creating the WAL did not fsync the parent directory")
	}
	st.SetSync(false)
	if _, err := st.Insert("r", "keep", nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Torn tail: half a frame of garbage past the good bytes.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{9, 0, 0, 0, 1, 2, 3})
	f.Close()

	before := mTruncatedFrames.Value()
	fileSyncs = 0
	st2, err := Open(path, relation.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if fileSyncs == 0 {
		t.Error("truncating the torn tail did not fsync the file — a machine crash could resurrect it")
	}
	if got := mTruncatedFrames.Value() - before; got != 1 {
		t.Errorf("simq_wal_truncated_frames advanced by %d, want 1", got)
	}
	if !strings.Contains(warns.String(), "truncated") {
		t.Errorf("no structured truncation warning logged; warnings: %q", warns.String())
	}
}

// TestCommitMismatchWarns pins the operator signal for the silent
// segment-ending commit-N mismatch: truncation semantics stay (every
// later transaction is discarded), but the counter moves and a warning
// names the reason.
func TestCommitMismatchWarns(t *testing.T) {
	stubSyncs(t)
	warns := captureWarns(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	f, _ := os.Create(path)
	frames := []walRecord{
		{LSN: 1, Tx: 1, Kind: recInsert, Rel: "r", Seq: "kept"},
		{LSN: 2, Tx: 1, Kind: recCommit, N: 1},
		{LSN: 3, Tx: 2, Kind: recCommit, N: 5}, // no ops pending: mismatch
		{LSN: 4, Tx: 3, Kind: recInsert, Rel: "r", Seq: "discarded"},
		{LSN: 5, Tx: 3, Kind: recCommit, N: 1},
	}
	for i := range frames {
		p, err := encodeRecord(nil, &frames[i])
		if err != nil {
			t.Fatal(err)
		}
		writeFrame(t, f, p)
	}
	f.Close()

	before := mTruncatedFrames.Value()
	cat := relation.NewCatalog()
	st, err := Open(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, _ := cat.Get("r")
	if got := r.Tuples(); len(got) != 1 || got[0].Seq != "kept" {
		t.Fatalf("replay past mismatched commit = %v, want only the first tx", got)
	}
	if got := mTruncatedFrames.Value() - before; got != 1 {
		t.Errorf("simq_wal_truncated_frames advanced by %d, want 1", got)
	}
	if w := warns.String(); !strings.Contains(w, "mismatch") {
		t.Errorf("warning does not name the mismatch: %q", w)
	}
}

// --------------------------------------------- crash-point harnesses

// TestCrashPointRecovery is the byte-granular fault-injection harness:
// a scripted series of commits runs against a live store while the
// harness records the WAL length and a full catalog dump after every
// commit (the committed-prefix oracle). Then, for EVERY byte offset of
// the finished log, the log is truncated to that prefix and reopened —
// the recovered catalog must equal the oracle state of the last commit
// whose bytes fit the prefix, at every single offset. The same sweep
// runs again on the post-checkpoint tail, where recovery is snapshot +
// tail prefix.
func TestCrashPointRecovery(t *testing.T) {
	stubSyncs(t)
	captureWarns(t) // silence expected torn-tail warnings
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	cat := relation.NewCatalog()
	st, err := Open(path, cat)
	if err != nil {
		t.Fatal(err)
	}
	st.SetSync(false)

	type boundary struct {
		off   int64
		state map[string][]relation.Tuple
	}
	oracle := []boundary{{0, catalogDump(cat)}}
	script := func(st *Store, cat *relation.Catalog, oracle *[]boundary) {
		var ids []int
		commit := func(ops []Op) {
			res, err := st.Commit(ops)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, res.InsertedIDs...)
			*oracle = append(*oracle, boundary{st.Metrics().WALBytes, catalogDump(cat)})
		}
		for k := 0; k < 8; k++ {
			ops := []Op{{Kind: OpInsert, Rel: "w", Seq: fmt.Sprintf("row-%d-a", k), Attrs: map[string]string{"k": fmt.Sprint(k)}}}
			if k%2 == 0 {
				ops = append(ops, Op{Kind: OpInsert, Rel: "w", Seq: fmt.Sprintf("row-%d-b", k)})
			}
			commit(ops)
			if k%3 == 2 && len(ids) > 2 {
				commit([]Op{{Kind: OpDelete, Rel: "w", ID: ids[k]}})
				commit([]Op{{Kind: OpUpdate, Rel: "w", ID: ids[k-1], Seq: fmt.Sprintf("upd-%d", k)}})
			}
		}
	}
	script(st, cat, &oracle)
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SetSync(false)
	st.Close()

	sweep := func(t *testing.T, log []byte, oracle []boundary, ckpt string) {
		scratch := t.TempDir()
		walPath := filepath.Join(scratch, "wal.log")
		for off := int64(0); off <= int64(len(log)); off++ {
			if err := os.WriteFile(walPath, log[:off], 0o644); err != nil {
				t.Fatal(err)
			}
			if ckpt != "" {
				if err := copyFile(ckpt, walPath+".ckpt"); err != nil {
					t.Fatal(err)
				}
			}
			cat := relation.NewCatalog()
			st, err := Open(walPath, cat)
			if err != nil {
				t.Fatalf("offset %d: reopen: %v", off, err)
			}
			want := oracle[0].state
			for _, b := range oracle {
				if b.off <= off {
					want = b.state
				}
			}
			if got := catalogDump(cat); !reflect.DeepEqual(got, want) {
				st.Close()
				t.Fatalf("offset %d of %d: recovered state diverges from committed-prefix oracle\n got: %v\nwant: %v",
					off, len(log), got, want)
			}
			st.SetSync(false)
			st.Close()
		}
	}
	t.Run("NoCheckpoint", func(t *testing.T) { sweep(t, final, oracle, "") })

	// Phase 2: checkpoint mid-history, run more commits, sweep the tail.
	cat2 := relation.NewCatalog()
	st2, err := Open(path, cat2)
	if err != nil {
		t.Fatal(err)
	}
	st2.SetSync(false)
	if _, err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	oracle2 := []boundary{{0, catalogDump(cat2)}}
	script(st2, cat2, &oracle2)
	tail, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ckptCopy := filepath.Join(dir, "ckpt.saved")
	if err := copyFile(st2.CheckpointPath(), ckptCopy); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	t.Run("PostCheckpointTail", func(t *testing.T) { sweep(t, tail, oracle2, ckptCopy) })
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// TestCrashPointCrossSegmentAtomicity truncates EVERY segment of a
// segmented store at EVERY byte offset and asserts no cross-segment
// transaction ever replays partially: each scripted batch is tagged, so
// after recovery every tag must appear with its full row count or not
// at all, and every cross-shard update must have exactly one of (old
// row, new row) visible. This pins the global-commit-record protocol —
// without it, truncating the tail of one segment surfaces the other
// segments' halves of the transaction.
func TestCrashPointCrossSegmentAtomicity(t *testing.T) {
	stubSyncs(t)
	captureWarns(t)
	const segs = 3
	dir := t.TempDir()
	base := filepath.Join(dir, "wal")
	newCat := func() *relation.Catalog {
		cat := relation.NewCatalog()
		cat.Add(relation.NewSharded("s", segs))
		return cat
	}
	st, err := OpenSegmented(base, newCat(), segs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetSync(false)

	// Script: a "victims" batch whose rows later updates move between
	// shards (its last row stays untouched as a presence sentinel), then
	// tagged cross-segment batches checked for all-or-nothing replay,
	// then the updates — whose replacement row may hash to a different
	// shard (and so a different segment) than the tombstone: the classic
	// partial-durability shape the global commit record closes.
	victims := make([]Op, 5)
	for j := range victims {
		victims[j] = Op{Kind: OpInsert, Rel: "s", Seq: fmt.Sprintf("victim-%d", j), Attrs: map[string]string{"tag": "victims"}}
	}
	vres, err := st.Commit(victims)
	if err != nil {
		t.Fatal(err)
	}
	victimIDs := vres.InsertedIDs
	sentinelID := victimIDs[len(victimIDs)-1]

	batchRows := map[string]int{}
	for k := 1; k <= 5; k++ {
		tag := fmt.Sprintf("tx%d", k)
		ops := make([]Op, 5)
		for j := range ops {
			ops[j] = Op{Kind: OpInsert, Rel: "s", Seq: fmt.Sprintf("seq-%d-%d", k, j), Attrs: map[string]string{"tag": tag}}
		}
		if _, err := st.Commit(ops); err != nil {
			t.Fatal(err)
		}
		batchRows[tag] = len(ops)
	}

	type updateCase struct{ oldID, newID int }
	var updates []updateCase
	for u := 0; u < len(victimIDs)-1; u++ {
		res, err := st.Commit([]Op{{Kind: OpUpdate, Rel: "s", ID: victimIDs[u],
			Seq: fmt.Sprintf("moved-%d", u), Attrs: map[string]string{"tag": fmt.Sprintf("upd%d", u)}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Applied != 1 {
			t.Fatalf("update of victim %d did not apply", victimIDs[u])
		}
		updates = append(updates, updateCase{oldID: victimIDs[u], newID: res.InsertedIDs[0]})
	}
	st.Close()

	full := make([][]byte, segs)
	for i := range full {
		b, err := os.ReadFile(fmt.Sprintf("%s.%d", base, i))
		if err != nil {
			t.Fatal(err)
		}
		full[i] = b
	}

	scratch := t.TempDir()
	sbase := filepath.Join(scratch, "wal")
	for cut := 0; cut < segs; cut++ {
		for off := 0; off <= len(full[cut]); off++ {
			for i := range full {
				content := full[i]
				if i == cut {
					content = content[:off]
				}
				if err := os.WriteFile(fmt.Sprintf("%s.%d", sbase, i), content, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			cat := newCat()
			st, err := OpenSegmented(sbase, cat, segs)
			if err != nil {
				t.Fatalf("segment %d offset %d: reopen: %v", cut, off, err)
			}
			sh, _ := cat.Lookup("s")
			byTag := map[string]int{}
			for _, tu := range sh.Tuples() {
				byTag[tu.Attrs["tag"]]++
			}
			for tag, want := range batchRows {
				if got := byTag[tag]; got != 0 && got != want {
					t.Fatalf("segment %d offset %d: batch %s partially replayed: %d of %d rows",
						cut, off, tag, got, want)
				}
			}
			shAny := sh.(*relation.ShardedRelation)
			_, victimsPresent := shAny.Tuple(sentinelID)
			for _, u := range updates {
				_, oldVisible := shAny.Tuple(u.oldID)
				_, newVisible := shAny.Tuple(u.newID)
				switch {
				case victimsPresent && oldVisible == newVisible:
					// Base batch replayed: the update must be whole — either
					// the tombstone+replacement both landed or neither did.
					t.Fatalf("segment %d offset %d: update %d->%d replayed partially (old=%v new=%v)",
						cut, off, u.oldID, u.newID, oldVisible, newVisible)
				case !victimsPresent && (oldVisible || newVisible):
					// Base batch dropped by recovery: the dependent update
					// must leave nothing behind (its replay is a no-op).
					t.Fatalf("segment %d offset %d: update %d->%d resurrected rows after its base batch was dropped (old=%v new=%v)",
						cut, off, u.oldID, u.newID, oldVisible, newVisible)
				}
			}
			st.SetSync(false)
			st.Close()
		}
	}
}

// ------------------------------------------------------- checkpoints

// TestCheckpointReopenTailOnly pins the tentpole reopen contract: after
// a checkpoint, reopen loads the snapshot and replays ONLY the WAL tail
// past its covering LSN, reaching a state identical to a store that
// replayed the full history — and the WAL actually shrank.
func TestCheckpointReopenTailOnly(t *testing.T) {
	stubSyncs(t)
	dir := t.TempDir()
	st, cat := openTemp(t, dir)
	var ids []int
	for i := 0; i < 20; i++ {
		id, err := st.Insert("w", fmt.Sprintf("pre-%d", i), map[string]string{"n": fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if ok, err := st.Delete("w", ids[3]); err != nil || !ok {
		t.Fatal(err)
	}
	before := st.Metrics().WALBytes
	info, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 19 || info.Rels != 1 {
		t.Fatalf("checkpoint info = %+v, want 19 rows / 1 rel", info)
	}
	if after := st.Metrics().WALBytes; after != 0 || before == 0 {
		t.Fatalf("WAL bytes %d -> %d; checkpoint must truncate the log", before, after)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("post-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	want := catalogDump(cat)
	st.Close()

	st2, cat2 := openTemp(t, dir)
	defer st2.Close()
	if got := st2.Metrics().ReplayedTx; got != 5 {
		t.Errorf("replayed %d tx after checkpoint, want only the 5-tx tail", got)
	}
	if got := catalogDump(cat2); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointed reopen diverged:\n got %v\nwant %v", got, want)
	}
	// The id allocator must resume exactly where the full history left
	// it, or the next insert would collide with pre-checkpoint ids.
	id, err := st2.Insert("w", "next", nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != 25 {
		t.Fatalf("post-reopen id = %d, want 25 (20 + 5 prior inserts; deletes burn no ids)", id)
	}
}

// TestCheckpointShardedRoundTrip checkpoints a segmented store with a
// sharded relation and verifies the rebuilt relation preserves global
// ids, routing, vectors and attributes — and that tail replay applies
// on top of the restored shards.
func TestCheckpointShardedRoundTrip(t *testing.T) {
	stubSyncs(t)
	const segs = 4
	dir := t.TempDir()
	base := filepath.Join(dir, "wal")
	newCat := func() *relation.Catalog {
		cat := relation.NewCatalog()
		cat.Add(relation.NewSharded("s", segs))
		return cat
	}
	st, err := OpenSegmented(base, newCat(), segs)
	if err != nil {
		t.Fatal(err)
	}
	st.SetSync(false)
	cat := st.Catalog()
	for i := 0; i < 40; i++ {
		op := Op{Kind: OpInsert, Rel: "s", Seq: fmt.Sprintf("row-%02d", i), Attrs: map[string]string{"i": fmt.Sprint(i)}}
		if i%3 == 0 {
			op.Vec = []float32{float32(i), float32(i) * 0.5}
		}
		if _, err := st.Commit([]Op{op}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Delete("s", 7); err != nil || !ok {
		t.Fatalf("tail delete = %v, %v", ok, err)
	}
	if _, err := st.Commit([]Op{{Kind: OpInsert, Rel: "s", Seq: "tail-row"}}); err != nil {
		t.Fatal(err)
	}
	want := catalogDump(cat)
	st.Close()

	cat2 := newCat()
	st2, err := OpenSegmented(base, cat2, segs)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := catalogDump(cat2); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded checkpoint reopen diverged:\n got %v\nwant %v", got, want)
	}
	sh2, _ := cat2.Lookup("s")
	if sh2.(*relation.ShardedRelation).NumShards() != segs {
		t.Fatalf("rebuilt relation has %d shards, want %d", sh2.(*relation.ShardedRelation).NumShards(), segs)
	}
}

// TestCheckpointCrashWindows exercises the two crash windows of the
// checkpoint protocol: (1) a crash mid-write leaves only a temp file,
// which the next open discards; (2) a crash after the atomic rename but
// before the WAL truncation leaves the full log behind the new
// snapshot — replay must filter the covered prefix by LSN, not apply it
// twice.
func TestCheckpointCrashWindows(t *testing.T) {
	stubSyncs(t)
	dir := t.TempDir()
	st, cat := openTemp(t, dir)
	for i := 0; i < 10; i++ {
		if _, err := st.Insert("w", fmt.Sprintf("r%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Window 1: orphaned temp file from a mid-write crash.
	tmp := st.CheckpointPath() + ".tmp"
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := catalogDump(cat)
	st.Close()
	st2, cat2 := openTemp(t, dir)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("orphaned checkpoint temp file survived reopen")
	}
	if got := catalogDump(cat2); !reflect.DeepEqual(got, want) {
		t.Fatalf("temp orphan corrupted recovery:\n got %v\nwant %v", got, want)
	}

	// Window 2: snapshot renamed, WAL truncation "lost" (simulated by
	// restoring the pre-checkpoint log bytes afterwards).
	walPath := filepath.Join(dir, "wal.log")
	preWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if err := os.WriteFile(walPath, preWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, cat3 := openTemp(t, dir)
	if got := st3.Metrics().ReplayedTx; got != 0 {
		t.Errorf("replayed %d covered tx after un-truncated checkpoint, want 0 (LSN filter)", got)
	}
	if got := catalogDump(cat3); !reflect.DeepEqual(got, want) {
		t.Fatalf("covered-prefix replay diverged:\n got %v\nwant %v", got, want)
	}
	// And the store keeps working: the stale frames are gone after the
	// next open truncation-by-LSN, so new commits replay cleanly.
	if _, err := st3.Insert("w", "after-crash", nil); err != nil {
		t.Fatal(err)
	}
	want3 := catalogDump(cat3)
	st3.Close()
	st4, cat4 := openTemp(t, dir)
	defer st4.Close()
	if got := catalogDump(cat4); !reflect.DeepEqual(got, want3) {
		t.Fatalf("post-crash-window commits diverged:\n got %v\nwant %v", got, want3)
	}
	// A corrupted snapshot must fail the open loudly, never replay a
	// partial state silently.
	ck, err := os.ReadFile(st4.CheckpointPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st4.CheckpointPath(), ck[:len(ck)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(walPath, relation.NewCatalog()); err == nil {
		t.Fatal("truncated checkpoint snapshot opened without error")
	}
	// Restore so Cleanup's Close path has a consistent store.
	if err := os.WriteFile(st4.CheckpointPath(), ck, 0o644); err != nil {
		t.Fatal(err)
	}
}

// ------------------------------------------------------ group commit

// TestGroupCommitConcurrentCheckpoint hammers a sync-on store with
// concurrent committers while checkpoints land mid-stream: every commit
// must be acknowledged exactly once (the truncation generation releases
// waiters whose bytes the snapshot covered), and a reopen must recover
// every acknowledged row. Runs under -race in CI (name matches the
// targeted regex).
func TestGroupCommitConcurrentCheckpoint(t *testing.T) {
	stubSyncs(t) // fsync correctness is pinned elsewhere; this is a scheduling test
	dir := t.TempDir()
	cat := relation.NewCatalog()
	st, err := Open(filepath.Join(dir, "wal.log"), cat)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := st.Insert("w", fmt.Sprintf("w%d-%d", w, i), nil); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
		case err := <-errs:
			t.Fatal(err)
		default:
			if _, err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		break
	}
	w, _ := cat.Get("w")
	if w.Len() != workers*perWorker {
		t.Fatalf("live rows = %d, want %d", w.Len(), workers*perWorker)
	}
	st.Close()

	cat2 := relation.NewCatalog()
	st2, err := Open(filepath.Join(dir, "wal.log"), cat2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	w2, _ := cat2.Get("w")
	if w2.Len() != workers*perWorker {
		t.Fatalf("recovered rows = %d, want %d", w2.Len(), workers*perWorker)
	}
}

// TestGroupCommitDurableAcknowledge pins the fsync contract of the
// group-commit path with a counting hook: with sync on, every commit's
// bytes must be covered by some fsync before Commit returns, but N
// concurrent commits need far fewer than N fsyncs.
func TestGroupCommitDurableAcknowledge(t *testing.T) {
	var mu sync.Mutex
	var fsyncs int
	sf := syncFile
	syncFile = func(f *os.File) error {
		mu.Lock()
		fsyncs++
		mu.Unlock()
		return sf(f)
	}
	t.Cleanup(func() { syncFile = sf })

	dir := t.TempDir()
	cat := relation.NewCatalog()
	st, err := Open(filepath.Join(dir, "wal.log"), cat)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const workers = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			if _, err := st.Insert("w", fmt.Sprintf("c%d", w), nil); err != nil {
				t.Error(err)
			}
		}(w)
	}
	mu.Lock()
	fsyncs = 0
	mu.Unlock()
	close(start)
	wg.Wait()
	mu.Lock()
	n := fsyncs
	mu.Unlock()
	if n == 0 {
		t.Fatal("sync-on commits acknowledged with no fsync at all")
	}
	if n >= workers {
		t.Errorf("%d fsyncs for %d concurrent commits — group commit did not batch", n, workers)
	}
}
