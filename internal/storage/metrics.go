package storage

import "repro/internal/obs"

// Write-path metrics, registered on the process-wide obs registry. The
// store's own Metrics() snapshot stays the /stats source of truth;
// these series are the Prometheus view of the same traffic plus the
// latency distributions a snapshot cannot carry.
var (
	mCommits = obs.Default.Counter("simq_store_commits_total",
		"Committed WAL transactions (live traffic, not replay).")
	mWALAppends = obs.Default.Counter("simq_wal_appends_total",
		"WAL transaction appends across all segments.")
	mWALBytes = obs.Default.Counter("simq_wal_bytes_total",
		"Bytes framed into the WAL across all segments.")
	mWALFsync = obs.Default.Histogram("simq_wal_fsync_seconds",
		"Latency of the per-commit WAL fsync.", obs.DefBuckets)
	mReplayTx = obs.Default.Counter("simq_wal_replayed_tx_total",
		"Transactions replayed from the WAL at store open.")
	mReplayOps = obs.Default.Counter("simq_wal_replayed_ops_total",
		"Operations replayed from the WAL at store open.")
	mReplayMillis = obs.Default.Gauge("simq_wal_replay_ms",
		"Wall time in milliseconds of the most recent WAL replay at store open.")
	mTruncatedFrames = obs.Default.Counter("simq_wal_truncated_frames",
		"Torn, corrupt or mismatched WAL tails truncated away at store open.")
	mGroupCommitBatch = obs.Default.Histogram("simq_group_commit_batch",
		"Commits covered by one WAL fsync (group-commit batch size).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	mCheckpoints = obs.Default.Counter("simq_checkpoints_total",
		"Checkpoints written (snapshot + WAL truncation).")
	mCheckpointSeconds = obs.Default.Histogram("simq_checkpoint_seconds",
		"Wall time of a checkpoint: serialize, fsync, rename, truncate.", obs.DefBuckets)
	mCheckpointBytes = obs.Default.Gauge("simq_checkpoint_bytes",
		"Size in bytes of the most recent checkpoint snapshot file.")
	mCheckpointRows = obs.Default.Gauge("simq_checkpoint_rows",
		"Visible rows captured by the most recent checkpoint snapshot.")
	mReplayTailTx = obs.Default.Gauge("simq_wal_replay_tail_tx",
		"Transactions replayed from the WAL tail at the most recent open (post-snapshot tail when a checkpoint was loaded).")
)
