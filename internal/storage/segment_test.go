package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/relation"
)

// newShardedCat builds a catalog with a sharded "words" relation.
func newShardedCat(shards int) *relation.Catalog {
	cat := relation.NewCatalog()
	cat.Add(relation.NewSharded("words", shards))
	return cat
}

// TestSegmentedReplayIdentity: a segmented store replays random
// interleaved DML — including cross-shard updates — to byte-identical
// state, for every tested shard count.
func TestSegmentedReplayIdentity(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal")
			cat := newShardedCat(shards)
			st, err := OpenSegmented(path, cat, shards)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(shards)))
			var live []int
			seq := func() string {
				b := make([]byte, 2+rng.Intn(6))
				for i := range b {
					b[i] = byte('a' + rng.Intn(8))
				}
				return string(b)
			}
			for i := 0; i < 400; i++ {
				switch op := rng.Intn(10); {
				case op < 6 || len(live) == 0:
					id, err := st.Insert("words", seq(), map[string]string{"n": fmt.Sprint(i)})
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case op < 8:
					id := live[rng.Intn(len(live))]
					if _, err := st.Delete("words", id); err != nil {
						t.Fatal(err)
					}
					live = drop(live, id)
				default:
					id := live[rng.Intn(len(live))]
					nid, ok, err := st.Update("words", id, seq(), nil)
					if err != nil {
						t.Fatal(err)
					}
					live = drop(live, id)
					if ok {
						live = append(live, nid)
					}
				}
			}
			words, _ := cat.Lookup("words")
			want := words.Tuples()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Every segment must actually carry traffic: hash routing that
			// funnels all records into one file would still replay but
			// defeat the per-shard layout.
			for i := 0; i < shards; i++ {
				fi, err := os.Stat(fmt.Sprintf("%s.%d", path, i))
				if err != nil || fi.Size() == 0 {
					t.Fatalf("segment %d missing or empty (err=%v)", i, err)
				}
			}

			cat2 := newShardedCat(shards)
			st2, err := OpenSegmented(path, cat2, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			words2, _ := cat2.Lookup("words")
			if got := words2.Tuples(); !reflect.DeepEqual(got, want) {
				t.Fatalf("replayed state diverges: %d vs %d rows", len(got), len(want))
			}
			sh2 := words2.(*relation.ShardedRelation)
			// Fresh ids must continue after the replayed maximum.
			id, err := st2.Insert("words", "zzz", nil)
			if err != nil {
				t.Fatal(err)
			}
			maxID := -1
			for _, tup := range want {
				if tup.ID > maxID {
					maxID = tup.ID
				}
			}
			if id <= maxID {
				t.Fatalf("post-replay insert reused id %d (max replayed %d)", id, maxID)
			}
			_ = sh2
		})
	}
}

func drop(ids []int, id int) []int {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// TestSegmentedCrossShardUpdateThenDelete pins the nasty ordering case:
// a row is updated onto a different shard (logged in the OLD shard's
// segment) and the moved row is then deleted (logged in the NEW
// shard's segment). Replay merges segments by the store-wide LSN, so
// the delete must still land after the update no matter which segment
// file is read first.
func TestSegmentedCrossShardUpdateThenDelete(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	cat := newShardedCat(shards)
	st, err := OpenSegmented(path, cat, shards)
	if err != nil {
		t.Fatal(err)
	}
	sh, _ := cat.Lookup("words")

	// Find seed/replacement sequences living on different shards.
	seed, repl := "", ""
	for i := 0; i < 1000 && repl == ""; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		if relation.ShardOf(a, shards) != relation.ShardOf(b, shards) {
			seed, repl = a, b
		}
	}
	id, err := st.Insert("words", seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	nid, ok, err := st.Update("words", id, repl, nil)
	if err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	if got := sh.(*relation.ShardedRelation).ShardOfID(nid); got != relation.ShardOf(repl, shards) {
		t.Fatalf("moved row on shard %d, want %d", got, relation.ShardOf(repl, shards))
	}
	if _, err := st.Delete("words", nid); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cat2 := newShardedCat(shards)
	st2, err := OpenSegmented(path, cat2, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	words2, _ := cat2.Lookup("words")
	if words2.Len() != 0 {
		t.Fatalf("replay resurrected %d rows; cross-segment order lost: %v", words2.Len(), words2.Tuples())
	}
}

// TestSegmentedMixedCatalog: plain relations coexist with sharded ones;
// their records ride segment 0 and replay in order.
func TestSegmentedMixedCatalog(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	cat := newShardedCat(shards)
	cat.Add(relation.New("plain"))
	st, err := OpenSegmented(path, cat, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("plain", "alpha", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("words", "beta", nil); err != nil {
		t.Fatal(err)
	}
	pid, err := st.Insert("plain", "gamma", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Update("plain", pid, "gamma2", nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	cat2 := newShardedCat(shards)
	cat2.Add(relation.New("plain"))
	st2, err := OpenSegmented(path, cat2, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	plain, _ := cat2.Lookup("plain")
	words, _ := cat2.Lookup("words")
	if plain.Len() != 2 || words.Len() != 1 {
		t.Fatalf("replayed lens = (%d plain, %d words), want (2, 1)", plain.Len(), words.Len())
	}
	if _, ok := plain.Tuple(pid); ok {
		t.Fatal("updated plain row's old id still visible after replay")
	}
}

// TestSegmentedIngestBatchAtomicVisibility: a multi-row commit through
// the segmented store still becomes visible as one shard-view publish
// (the OpInsertAt run is batched, not applied row by row).
func TestSegmentedIngestBatchAtomicVisibility(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	cat := newShardedCat(shards)
	st, err := OpenSegmented(filepath.Join(dir, "wal"), cat, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh := func() *relation.ShardedRelation {
		tab, _ := cat.Lookup("words")
		return tab.(*relation.ShardedRelation)
	}()
	before := sh.Version()
	ops := make([]Op, 16)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Rel: "words", Seq: fmt.Sprintf("row%d", i)}
	}
	res, err := st.Commit(ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 16 || len(res.InsertedIDs) != 16 {
		t.Fatalf("commit applied %d ops (%d ids)", res.Applied, len(res.InsertedIDs))
	}
	if got := sh.Version() - before; got != 1 {
		t.Fatalf("batch published %d view versions, want 1 (non-atomic visibility)", got)
	}
}
