// Package stock generates the synthetic stock-price workloads used by
// the companion experiments. The real data the companion paper used
// (daily closings from ftp.ai.mit.edu/pub/stocks/results/, long gone)
// is substituted by the random-walk family the same paper used for its
// synthetic runs:
//
//	x_0 = y,              y drawn from [20, 99]
//	x_i = x_{i-1} + z_i,  z_i drawn from [-4, 4]
//
// Random walks concentrate spectral energy in the first DFT
// coefficients, which is the property all k-index experiments depend
// on; the substitution therefore preserves the measured behaviour.
package stock

import "math/rand"

// Walk returns one random-walk price series of the given length.
func Walk(rng *rand.Rand, length int) []float64 {
	s := make([]float64, length)
	if length == 0 {
		return s
	}
	s[0] = 20 + 79*rng.Float64()
	for i := 1; i < length; i++ {
		s[i] = s[i-1] + rng.Float64()*8 - 4
	}
	return s
}

// Walks returns count independent series of the given length from a
// deterministic seed.
func Walks(seed int64, count, length int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		out[i] = Walk(rng, length)
	}
	return out
}

// Example sequences from the companion paper's running examples; used
// by tests and the stocks example application.

// ExampleS1 is sequence s1 of Example 1.1.
func ExampleS1() []float64 {
	return []float64{36, 38, 40, 38, 42, 38, 36, 36, 37, 38, 39, 38, 40, 38, 37}
}

// ExampleS2 is sequence s2 of Example 1.1.
func ExampleS2() []float64 {
	return []float64{40, 37, 37, 42, 41, 35, 40, 35, 34, 42, 38, 35, 45, 36, 34}
}
