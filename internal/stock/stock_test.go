package stock

import (
	"math"
	"math/rand"
	"testing"
)

func TestWalkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := Walk(rng, 128)
		if len(s) != 128 {
			t.Fatalf("len = %d", len(s))
		}
		if s[0] < 20 || s[0] > 99 {
			t.Errorf("x0 = %g outside [20,99]", s[0])
		}
		for i := 1; i < len(s); i++ {
			if d := math.Abs(s[i] - s[i-1]); d > 4 {
				t.Fatalf("step %d = %g > 4", i, d)
			}
		}
	}
}

func TestWalkEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := Walk(rng, 0); len(got) != 0 {
		t.Errorf("Walk(0) = %v", got)
	}
}

func TestWalksDeterministic(t *testing.T) {
	a := Walks(7, 5, 32)
	b := Walks(7, 5, 32)
	if len(a) != 5 || len(b) != 5 {
		t.Fatal("wrong count")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("series %d differ at %d", i, j)
			}
		}
	}
	c := Walks(8, 5, 32)
	same := true
	for j := range a[0] {
		if a[0][j] != c[0][j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical walks")
	}
}

func TestExampleSequences(t *testing.T) {
	s1, s2 := ExampleS1(), ExampleS2()
	if len(s1) != 15 || len(s2) != 15 {
		t.Fatalf("lengths %d, %d; want 15", len(s1), len(s2))
	}
	// Spot values from the paper.
	if s1[0] != 36 || s1[4] != 42 || s1[14] != 37 {
		t.Errorf("s1 = %v", s1)
	}
	if s2[0] != 40 || s2[12] != 45 || s2[14] != 34 {
		t.Errorf("s2 = %v", s2)
	}
}
