// Package seq provides the sequence substrate of the similarity-query
// framework: symbols, alphabets, random sequence generation and the
// string-decomposition utilities (q-grams, symbol histograms) used by the
// candidate filters in internal/index.
//
// Sequences throughout the repository are plain Go strings whose symbols
// are single bytes. The PODS'95 framework assumes a finite alphabet; one
// byte per symbol keeps slicing, hashing and map keys trivial while
// supporting alphabets of up to 256 symbols.
package seq

import (
	"fmt"
	"math/rand"
	"strings"
)

// Alphabet is an ordered set of distinct byte symbols.
type Alphabet struct {
	symbols []byte
	index   [256]int // symbol -> position+1, 0 means absent
}

// NewAlphabet builds an alphabet from the distinct bytes of s, in first
// occurrence order. It returns an error if s is empty.
func NewAlphabet(s string) (*Alphabet, error) {
	if s == "" {
		return nil, fmt.Errorf("seq: empty alphabet")
	}
	a := &Alphabet{}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if a.index[c] != 0 {
			continue
		}
		a.symbols = append(a.symbols, c)
		a.index[c] = len(a.symbols)
	}
	return a, nil
}

// MustAlphabet is NewAlphabet that panics on error; for tests and fixed
// literals.
func MustAlphabet(s string) *Alphabet {
	a, err := NewAlphabet(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Size returns the number of distinct symbols.
func (a *Alphabet) Size() int { return len(a.symbols) }

// Symbols returns the symbols in order. The caller must not modify the
// returned slice.
func (a *Alphabet) Symbols() []byte { return a.symbols }

// Contains reports whether c is a symbol of the alphabet.
func (a *Alphabet) Contains(c byte) bool { return a.index[c] != 0 }

// Index returns the position of c in the alphabet, or -1 if absent.
func (a *Alphabet) Index(c byte) int { return a.index[c] - 1 }

// ValidSeq reports whether every symbol of s belongs to the alphabet.
func (a *Alphabet) ValidSeq(s string) bool {
	for i := 0; i < len(s); i++ {
		if !a.Contains(s[i]) {
			return false
		}
	}
	return true
}

// String returns the symbols as a string.
func (a *Alphabet) String() string { return string(a.symbols) }

// Random returns a uniformly random sequence of length n over the
// alphabet, using rng.
func (a *Alphabet) Random(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(a.symbols[rng.Intn(len(a.symbols))])
	}
	return b.String()
}

// RandomEdits returns a copy of s with k random single-symbol edits
// (insertions, deletions or substitutions) applied, drawing replacement
// symbols from the alphabet. It is used by workload generators to plant
// near-duplicates at a known edit radius. The result's true distance from
// s is at most k.
func (a *Alphabet) RandomEdits(rng *rand.Rand, s string, k int) string {
	b := []byte(s)
	for i := 0; i < k; i++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(b) > 0: // delete
			p := rng.Intn(len(b))
			b = append(b[:p], b[p+1:]...)
		case op == 1: // insert
			p := rng.Intn(len(b) + 1)
			c := a.symbols[rng.Intn(len(a.symbols))]
			b = append(b[:p], append([]byte{c}, b[p:]...)...)
		case len(b) > 0: // substitute
			p := rng.Intn(len(b))
			b[p] = a.symbols[rng.Intn(len(a.symbols))]
		}
	}
	return string(b)
}

// QGrams returns the multiset of q-grams of s as a map from gram to
// multiplicity. Sequences shorter than q have no q-grams.
func QGrams(s string, q int) map[string]int {
	grams := make(map[string]int)
	if q <= 0 || len(s) < q {
		return grams
	}
	for i := 0; i+q <= len(s); i++ {
		grams[s[i:i+q]]++
	}
	return grams
}

// QGramOverlap returns the size of the multiset intersection of the
// q-gram profiles of x and y. The classic q-gram filter states that if
// the unit-cost edit distance between x and y is at most k then the
// overlap is at least max(len(x),len(y)) - q + 1 - k*q.
func QGramOverlap(x, y string, q int) int {
	gx := QGrams(x, q)
	gy := QGrams(y, q)
	if len(gy) < len(gx) {
		gx, gy = gy, gx
	}
	overlap := 0
	for g, cx := range gx {
		if cy := gy[g]; cy < cx {
			overlap += cy
		} else {
			overlap += cx
		}
	}
	return overlap
}

// Histogram counts the multiplicity of every byte symbol in s.
type Histogram [256]int

// NewHistogram returns the symbol histogram of s.
func NewHistogram(s string) Histogram {
	var h Histogram
	for i := 0; i < len(s); i++ {
		h[s[i]]++
	}
	return h
}

// L1Dist returns the L1 distance between two histograms. For unit-cost
// edit distance, ed(x,y) >= L1(hist(x),hist(y))/2, which makes the
// histogram an admissible pruning bound (the "count filter").
func (h Histogram) L1Dist(o Histogram) int {
	d := 0
	for i := range h {
		if h[i] > o[i] {
			d += h[i] - o[i]
		} else {
			d += o[i] - h[i]
		}
	}
	return d
}

// AbsDiff returns |a-b| for ints.
func AbsDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// CommonPrefix returns the length of the longest common prefix of x and y.
func CommonPrefix(x, y string) int {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	i := 0
	for i < n && x[i] == y[i] {
		i++
	}
	return i
}

// CommonSuffix returns the length of the longest common suffix of x and y.
func CommonSuffix(x, y string) int {
	i := 0
	for i < len(x) && i < len(y) && x[len(x)-1-i] == y[len(y)-1-i] {
		i++
	}
	return i
}

// Reverse returns s reversed.
func Reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// Replace returns s with the span [i, i+len(old)) replaced by new. It
// panics if the span is out of bounds or does not equal old; callers in
// the rewrite engine have already matched old at i.
func Replace(s string, i int, old, new string) string {
	if i < 0 || i+len(old) > len(s) || s[i:i+len(old)] != old {
		panic(fmt.Sprintf("seq: Replace(%q, %d, %q, %q): span mismatch", s, i, old, new))
	}
	var b strings.Builder
	b.Grow(len(s) - len(old) + len(new))
	b.WriteString(s[:i])
	b.WriteString(new)
	b.WriteString(s[i+len(old):])
	return b.String()
}
