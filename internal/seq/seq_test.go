package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAlphabet(t *testing.T) {
	a, err := NewAlphabet("abcabc")
	if err != nil {
		t.Fatalf("NewAlphabet: %v", err)
	}
	if got := a.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	if got := a.String(); got != "abc" {
		t.Errorf("String = %q, want %q", got, "abc")
	}
	for i, c := range []byte("abc") {
		if !a.Contains(c) {
			t.Errorf("Contains(%q) = false", c)
		}
		if got := a.Index(c); got != i {
			t.Errorf("Index(%q) = %d, want %d", c, got, i)
		}
	}
	if a.Contains('z') {
		t.Error("Contains('z') = true")
	}
	if got := a.Index('z'); got != -1 {
		t.Errorf("Index('z') = %d, want -1", got)
	}
}

func TestNewAlphabetEmpty(t *testing.T) {
	if _, err := NewAlphabet(""); err == nil {
		t.Fatal("NewAlphabet(\"\") succeeded, want error")
	}
}

func TestMustAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlphabet(\"\") did not panic")
		}
	}()
	MustAlphabet("")
}

func TestValidSeq(t *testing.T) {
	a := MustAlphabet("abc")
	for _, tc := range []struct {
		s    string
		want bool
	}{
		{"", true},
		{"abcabc", true},
		{"abd", false},
		{"d", false},
	} {
		if got := a.ValidSeq(tc.s); got != tc.want {
			t.Errorf("ValidSeq(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestRandom(t *testing.T) {
	a := MustAlphabet("xyz")
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 17, 256} {
		s := a.Random(rng, n)
		if len(s) != n {
			t.Errorf("Random(%d): len = %d", n, len(s))
		}
		if !a.ValidSeq(s) {
			t.Errorf("Random(%d) produced out-of-alphabet symbols: %q", n, s)
		}
	}
}

func TestRandomEditsLengthBound(t *testing.T) {
	a := MustAlphabet("ab")
	rng := rand.New(rand.NewSource(7))
	s := a.Random(rng, 20)
	for k := 0; k <= 5; k++ {
		e := a.RandomEdits(rng, s, k)
		if AbsDiff(len(e), len(s)) > k {
			t.Errorf("RandomEdits k=%d changed length by %d", k, AbsDiff(len(e), len(s)))
		}
		if !a.ValidSeq(e) {
			t.Errorf("RandomEdits produced invalid sequence %q", e)
		}
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("ababa", 2)
	want := map[string]int{"ab": 2, "ba": 2}
	if len(g) != len(want) {
		t.Fatalf("QGrams = %v, want %v", g, want)
	}
	for k, v := range want {
		if g[k] != v {
			t.Errorf("QGrams[%q] = %d, want %d", k, g[k], v)
		}
	}
	if got := QGrams("a", 2); len(got) != 0 {
		t.Errorf("QGrams short = %v, want empty", got)
	}
	if got := QGrams("abc", 0); len(got) != 0 {
		t.Errorf("QGrams q=0 = %v, want empty", got)
	}
}

func TestQGramOverlap(t *testing.T) {
	for _, tc := range []struct {
		x, y string
		q    int
		want int
	}{
		{"abcd", "abcd", 2, 3},
		{"abcd", "abce", 2, 2},
		{"abcd", "wxyz", 2, 0},
		{"ababa", "ababa", 2, 4},
	} {
		if got := QGramOverlap(tc.x, tc.y, tc.q); got != tc.want {
			t.Errorf("QGramOverlap(%q,%q,%d) = %d, want %d", tc.x, tc.y, tc.q, got, tc.want)
		}
	}
}

func TestQGramOverlapSymmetric(t *testing.T) {
	a := MustAlphabet("abc")
	rng := rand.New(rand.NewSource(3))
	f := func(n1, n2 uint8) bool {
		x := a.Random(rng, int(n1%32))
		y := a.Random(rng, int(n2%32))
		return QGramOverlap(x, y, 2) == QGramOverlap(y, x, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("aabz")
	if h['a'] != 2 || h['b'] != 1 || h['z'] != 1 || h['c'] != 0 {
		t.Errorf("NewHistogram wrong: a=%d b=%d z=%d c=%d", h['a'], h['b'], h['z'], h['c'])
	}
}

func TestL1Dist(t *testing.T) {
	x := NewHistogram("aab")
	y := NewHistogram("abb")
	if got := x.L1Dist(y); got != 2 {
		t.Errorf("L1Dist = %d, want 2", got)
	}
	if got := x.L1Dist(x); got != 0 {
		t.Errorf("L1Dist self = %d, want 0", got)
	}
}

func TestL1DistSymmetricAndTriangle(t *testing.T) {
	a := MustAlphabet("abcd")
	rng := rand.New(rand.NewSource(11))
	f := func(n1, n2, n3 uint8) bool {
		x := NewHistogram(a.Random(rng, int(n1%24)))
		y := NewHistogram(a.Random(rng, int(n2%24)))
		z := NewHistogram(a.Random(rng, int(n3%24)))
		return x.L1Dist(y) == y.L1Dist(x) && x.L1Dist(z) <= x.L1Dist(y)+y.L1Dist(z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixSuffix(t *testing.T) {
	for _, tc := range []struct {
		x, y     string
		pre, suf int
	}{
		{"", "", 0, 0},
		{"abc", "abc", 3, 3},
		{"abcx", "abcy", 3, 0},
		{"xabc", "yabc", 0, 3},
		{"abc", "", 0, 0},
	} {
		if got := CommonPrefix(tc.x, tc.y); got != tc.pre {
			t.Errorf("CommonPrefix(%q,%q) = %d, want %d", tc.x, tc.y, got, tc.pre)
		}
		if got := CommonSuffix(tc.x, tc.y); got != tc.suf {
			t.Errorf("CommonSuffix(%q,%q) = %d, want %d", tc.x, tc.y, got, tc.suf)
		}
	}
}

func TestReverse(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"a", "a"},
		{"abc", "cba"},
		{"abba", "abba"},
	} {
		if got := Reverse(tc.in); got != tc.want {
			t.Errorf("Reverse(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	a := MustAlphabet("abc")
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8) bool {
		s := a.Random(rng, int(n%64))
		return Reverse(Reverse(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplace(t *testing.T) {
	if got := Replace("abcdef", 2, "cd", "XY"); got != "abXYef" {
		t.Errorf("Replace = %q, want %q", got, "abXYef")
	}
	if got := Replace("abc", 1, "b", ""); got != "ac" {
		t.Errorf("Replace delete = %q, want %q", got, "ac")
	}
	if got := Replace("abc", 3, "", "x"); got != "abcx" {
		t.Errorf("Replace append = %q, want %q", got, "abcx")
	}
}

func TestReplacePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replace with wrong old did not panic")
		}
	}()
	Replace("abc", 0, "zz", "x")
}

func TestQGramFilterSoundness(t *testing.T) {
	// Classic q-gram lower bound: if y is obtained from x by k unit
	// edits, overlap >= max(|x|,|y|) - q + 1 - k*q.
	a := MustAlphabet("abcd")
	rng := rand.New(rand.NewSource(13))
	const q = 2
	for trial := 0; trial < 200; trial++ {
		x := a.Random(rng, 10+rng.Intn(20))
		k := rng.Intn(4)
		y := a.RandomEdits(rng, x, k)
		m := len(x)
		if len(y) > m {
			m = len(y)
		}
		bound := m - q + 1 - k*q
		if bound < 0 {
			bound = 0
		}
		if got := QGramOverlap(x, y, q); got < bound {
			t.Fatalf("q-gram bound violated: x=%q y=%q k=%d overlap=%d bound=%d", x, y, k, got, bound)
		}
	}
}

func TestRandomDistribution(t *testing.T) {
	// Sanity: all symbols should occur in a long random string.
	a := MustAlphabet("abcdefgh")
	rng := rand.New(rand.NewSource(17))
	s := a.Random(rng, 4096)
	for _, c := range a.Symbols() {
		if !strings.ContainsRune(s, rune(c)) {
			t.Errorf("symbol %q never generated", c)
		}
	}
}
