package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64()*200 - 100
		}
		out[i] = p
	}
	return out
}

func buildTree(t *testing.T, pts [][]float64, maxEntries int) *Tree {
	t.Helper()
	tr, err := New(len(pts[0]), maxEntries)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func bruteRange(pts [][]float64, q Rect, tf *Affine) []int {
	var out []int
	for i, p := range pts {
		x := p
		if tf != nil {
			x = tf.Apply(p)
		}
		if q.Contains(x) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInvariantsAfterInserts(t *testing.T) {
	for _, n := range []int{0, 1, 5, 33, 200, 1500} {
		pts := randPoints(int64(n)+1, n, 4)
		tr, err := New(4, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if err := tr.Insert(i, p); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	pts := randPoints(7, 2000, 3)
	tr := buildTree(t, pts, 16)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		for d := range lo {
			a := rng.Float64()*200 - 100
			b := rng.Float64()*200 - 100
			lo[d], hi[d] = math.Min(a, b), math.Max(a, b)
		}
		q, err := NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := tr.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRange(pts, q, nil)
		if !sameInts(got, want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
	}
}

func TestTransformedSearchMatchesBruteForce(t *testing.T) {
	pts := randPoints(9, 1500, 2)
	tr := buildTree(t, pts, 12)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		tf := &Affine{
			A: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}, // negatives allowed
			B: []float64{rng.Float64()*20 - 10, rng.Float64()*20 - 10},
		}
		lo := []float64{rng.Float64()*300 - 150, rng.Float64()*300 - 150}
		hi := []float64{lo[0] + rng.Float64()*100, lo[1] + rng.Float64()*100}
		q, err := NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := tr.SearchTransformed(q, tf)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRange(pts, q, tf)
		if !sameInts(got, want) {
			t.Fatalf("trial %d: transformed search wrong: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestIdentityTransformSameAccesses(t *testing.T) {
	// The companion's claim behind Figures 8/9: identity-transformed
	// search touches exactly the same nodes as the plain search.
	pts := randPoints(11, 3000, 4)
	tr := buildTree(t, pts, 16)
	q, _ := NewRect([]float64{-20, -20, -20, -20}, []float64{20, 20, 20, 20})
	plain, st1, err := tr.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	tfed, st2, err := tr.SearchTransformed(q, Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(plain, tfed) {
		t.Fatal("identity transform changed the answers")
	}
	if st1.NodeAccesses != st2.NodeAccesses {
		t.Errorf("node accesses differ: %d vs %d", st1.NodeAccesses, st2.NodeAccesses)
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	pts := randPoints(13, 1200, 3)
	tr := buildTree(t, pts, 16)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.Float64()*200 - 100, rng.Float64()*200 - 100, rng.Float64()*200 - 100}
		for _, k := range []int{1, 5, 17} {
			got, _, err := tr.NearestK(q, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			type nd struct {
				id int
				d  float64
			}
			all := make([]nd, len(pts))
			for i, p := range pts {
				all[i] = nd{i, math.Sqrt(sqDist(p, q))}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
			if len(got) != k {
				t.Fatalf("k=%d: got %d results", k, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
					t.Fatalf("k=%d result %d: dist %g, want %g", k, i, got[i].Dist, all[i].d)
				}
			}
		}
	}
}

func TestNearestKTransformed(t *testing.T) {
	pts := randPoints(15, 800, 2)
	tr := buildTree(t, pts, 8)
	tf := &Affine{A: []float64{-1, 2}, B: []float64{5, -3}}
	q := []float64{1, 1}
	got, _, err := tr.NearestK(q, 7, tf)
	if err != nil {
		t.Fatal(err)
	}
	type nd struct {
		id int
		d  float64
	}
	all := make([]nd, len(pts))
	for i, p := range pts {
		all[i] = nd{i, math.Sqrt(sqDist(tf.Apply(p), q))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	for i := range got {
		if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
			t.Fatalf("result %d: dist %g, want %g", i, got[i].Dist, all[i].d)
		}
	}
}

func TestSearchEmptyTree(t *testing.T) {
	tr, _ := New(2, 8)
	q, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	got, _, err := tr.Search(q)
	if err != nil || got != nil {
		t.Errorf("empty search = %v, %v", got, err)
	}
	nn, _, err := tr.NearestK([]float64{0, 0}, 3, nil)
	if err != nil || nn != nil {
		t.Errorf("empty NN = %v, %v", nn, err)
	}
}

func TestDimensionErrors(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("New(0) succeeded")
	}
	if _, err := New(2, 3); err == nil {
		t.Error("New with maxEntries 3 succeeded")
	}
	tr, _ := New(2, 8)
	if err := tr.Insert(0, []float64{1}); err == nil {
		t.Error("Insert with wrong dim succeeded")
	}
	q, _ := NewRect([]float64{0}, []float64{1})
	if _, _, err := tr.Search(q); err == nil {
		t.Error("Search with wrong dim succeeded")
	}
	if _, _, err := tr.NearestK([]float64{0}, 1, nil); err == nil {
		t.Error("NearestK with wrong dim succeeded")
	}
	tr.Insert(0, []float64{0, 0})
	q2, _ := NewRect([]float64{0, 0}, []float64{1, 1})
	bad := &Affine{A: []float64{1}, B: []float64{0}}
	if _, _, err := tr.SearchTransformed(q2, bad); err == nil {
		t.Error("bad affine accepted")
	}
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{1}, []float64{0}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestRectOps(t *testing.T) {
	r, _ := NewRect([]float64{0, 0}, []float64{2, 4})
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %g", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %g", got)
	}
	o, _ := NewRect([]float64{1, 1}, []float64{3, 3})
	if got := r.OverlapArea(o); got != 2 {
		t.Errorf("OverlapArea = %g", got)
	}
	if !r.Overlaps(o) {
		t.Error("Overlaps = false")
	}
	e := r.Enlarged(o)
	if e.Max[0] != 3 || e.Max[1] != 4 {
		t.Errorf("Enlarged = %+v", e)
	}
	if got := r.Enlargement(o); got != 12-8 {
		t.Errorf("Enlargement = %g", got)
	}
	c := r.Center()
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains([]float64{1, 1}) || r.Contains([]float64{3, 3}) {
		t.Error("Contains wrong")
	}
	far, _ := NewRect([]float64{5, 5}, []float64{6, 6})
	if r.Overlaps(far) {
		t.Error("disjoint rects overlap")
	}
	if got := far.MinDist([]float64{5.5, 5.5}); got != 0 {
		t.Errorf("MinDist inside = %g", got)
	}
	if got := far.MinDist([]float64{4, 5.5}); got != 1 {
		t.Errorf("MinDist = %g, want 1 (squared)", got)
	}
}

func TestAffineNegativeStretchRect(t *testing.T) {
	tf := &Affine{A: []float64{-2}, B: []float64{1}}
	r, _ := NewRect([]float64{0}, []float64{3})
	img := tf.ApplyRect(r)
	// Image of [0,3] under -2x+1 is [-5, 1].
	if img.Min[0] != -5 || img.Max[0] != 1 {
		t.Errorf("image = %+v", img)
	}
	// Interior point maps to interior (safety property).
	p := tf.Apply([]float64{1})
	if !img.Contains(p) {
		t.Error("interior point left the image rectangle")
	}
}

func TestHeight(t *testing.T) {
	tr, _ := New(2, 4)
	if tr.Height() != 0 {
		t.Errorf("empty height = %d", tr.Height())
	}
	pts := randPoints(20, 300, 2)
	for i, p := range pts {
		tr.Insert(i, p)
	}
	if tr.Height() < 3 {
		t.Errorf("300 points with fanout 4: height = %d, want >= 3", tr.Height())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr, _ := New(2, 4)
	for i := 0; i < 50; i++ {
		tr.Insert(i, []float64{1, 1})
	}
	q, _ := NewRect([]float64{1, 1}, []float64{1, 1})
	got, _, err := tr.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Errorf("duplicates: %d found, want 50", len(got))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
