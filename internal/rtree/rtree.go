package rtree

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one indexed point with its caller-assigned identifier.
type Entry struct {
	ID    int
	Point []float64
}

// Tree is an in-memory R*-tree over points. Not safe for concurrent
// mutation; concurrent searches of an immutable tree are fine.
type Tree struct {
	dim  int
	max  int // max entries per node
	min  int // min entries per node (fill guarantee)
	root *node
	size int
}

type node struct {
	leaf     bool
	rect     Rect
	children []*node // internal nodes
	entries  []Entry // leaf nodes
	level    int     // 0 = leaf
}

// New returns an empty tree for points of the given dimensionality.
// maxEntries <= 0 selects the default of 32 (min = 40% of max, per the
// R* paper's recommendation).
func New(dim, maxEntries int) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("rtree: dimension must be positive, got %d", dim)
	}
	if maxEntries <= 0 {
		maxEntries = 32
	}
	if maxEntries < 4 {
		return nil, fmt.Errorf("rtree: maxEntries must be >= 4, got %d", maxEntries)
	}
	mn := maxEntries * 2 / 5
	if mn < 2 {
		mn = 2
	}
	return &Tree{dim: dim, max: maxEntries, min: mn}, nil
}

// Dim returns the point dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (0 for the empty tree, 1 for a single
// leaf).
func (t *Tree) Height() int {
	if t.root == nil {
		return 0
	}
	return t.root.level + 1
}

// Insert adds a point with an identifier.
func (t *Tree) Insert(id int, p []float64) error {
	if len(p) != t.dim {
		return fmt.Errorf("rtree: point dim %d, want %d", len(p), t.dim)
	}
	q := make([]float64, t.dim)
	copy(q, p)
	e := Entry{ID: id, Point: q}
	if t.root == nil {
		t.root = &node{leaf: true, rect: PointRect(q), level: 0}
	}
	t.insertEntry(e, map[int]bool{})
	t.size++
	return nil
}

// insertEntry performs R* insertion with one forced reinsert per level.
func (t *Tree) insertEntry(e Entry, reinserted map[int]bool) {
	split := t.insertAt(t.root, e, 0, reinserted)
	if split != nil {
		old := t.root
		t.root = &node{
			leaf:     false,
			level:    old.level + 1,
			children: []*node{old, split},
			rect:     old.rect.Enlarged(split.rect),
		}
	}
}

// insertAt descends to the target level and handles overflow. Returns a
// split sibling to be installed by the caller, or nil.
func (t *Tree) insertAt(n *node, e Entry, level int, reinserted map[int]bool) *node {
	n.rect = n.rect.Enlarged(PointRect(e.Point))
	if n.level == level {
		if !n.leaf {
			panic("rtree: level-0 node is not a leaf")
		}
		n.entries = append(n.entries, e)
		if len(n.entries) > t.max {
			return t.overflowLeaf(n, reinserted)
		}
		return nil
	}
	child := chooseSubtree(n, PointRect(e.Point))
	split := t.insertAt(child, e, level, reinserted)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.max {
			return t.overflowInternal(n, reinserted)
		}
	}
	t.tighten(n)
	return nil
}

// chooseSubtree implements the R* descent criterion: least overlap
// enlargement at the level above the leaves, least area enlargement
// elsewhere, ties by smaller area.
func chooseSubtree(n *node, r Rect) *node {
	best := n.children[0]
	if n.level == 1 {
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for _, c := range n.children {
			enlarged := c.rect.Enlarged(r)
			var overlap float64
			for _, o := range n.children {
				if o != c {
					overlap += enlarged.OverlapArea(o.rect)
				}
			}
			enl := enlarged.Area() - c.rect.Area()
			area := c.rect.Area()
			if overlap < bestOverlap ||
				(overlap == bestOverlap && enl < bestEnl) ||
				(overlap == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = c, overlap, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for _, c := range n.children {
		enl := c.rect.Enlargement(r)
		area := c.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = c, enl, area
		}
	}
	return best
}

// overflowLeaf applies forced reinsertion on first overflow per level,
// splitting otherwise.
func (t *Tree) overflowLeaf(n *node, reinserted map[int]bool) *node {
	if n != t.root && !reinserted[n.level] {
		reinserted[n.level] = true
		t.reinsertLeaf(n, reinserted)
		return nil
	}
	return t.splitLeaf(n)
}

func (t *Tree) overflowInternal(n *node, reinserted map[int]bool) *node {
	// Forced reinsertion of subtrees is rarely worth the complexity in
	// memory; the original paper applies it on all levels, most
	// implementations only on leaves. We split internal nodes directly.
	return t.splitInternal(n)
}

// reinsertLeaf removes the p entries farthest from the node center and
// reinserts them from the top (R* forced reinsert, p = 30%).
func (t *Tree) reinsertLeaf(n *node, reinserted map[int]bool) {
	p := len(n.entries) * 3 / 10
	if p < 1 {
		p = 1
	}
	center := n.rect.Center()
	sort.Slice(n.entries, func(i, j int) bool {
		return sqDist(n.entries[i].Point, center) > sqDist(n.entries[j].Point, center)
	})
	victims := make([]Entry, p)
	copy(victims, n.entries[:p])
	n.entries = append(n.entries[:0], n.entries[p:]...)
	t.tighten(n)
	for _, e := range victims {
		t.insertEntry(e, reinserted)
	}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// splitLeaf applies the R* split to a leaf and returns the new sibling.
func (t *Tree) splitLeaf(n *node) *node {
	rects := make([]Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = PointRect(e.Point)
	}
	order, cut := t.chooseSplit(rects)
	right := &node{leaf: true, level: n.level}
	oldEntries := n.entries
	var leftEntries, rightEntries []Entry
	for i, idx := range order {
		if i < cut {
			leftEntries = append(leftEntries, oldEntries[idx])
		} else {
			rightEntries = append(rightEntries, oldEntries[idx])
		}
	}
	n.entries = leftEntries
	right.entries = rightEntries
	t.tighten(n)
	t.tighten(right)
	return right
}

// splitInternal applies the R* split to an internal node.
func (t *Tree) splitInternal(n *node) *node {
	rects := make([]Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	order, cut := t.chooseSplit(rects)
	right := &node{leaf: false, level: n.level}
	oldChildren := n.children
	var leftCh, rightCh []*node
	for i, idx := range order {
		if i < cut {
			leftCh = append(leftCh, oldChildren[idx])
		} else {
			rightCh = append(rightCh, oldChildren[idx])
		}
	}
	n.children = leftCh
	right.children = rightCh
	t.tighten(n)
	t.tighten(right)
	return right
}

// chooseSplit implements the R* ChooseSplitAxis / ChooseSplitIndex: for
// every axis, sort by min then max; sum the margins of all legal
// distributions; pick the axis with the least margin sum, then the
// distribution with least overlap (ties: least total area). It returns
// a permutation of indices and the cut position.
func (t *Tree) chooseSplit(rects []Rect) ([]int, int) {
	total := len(rects)
	bestAxis, bestMargin := -1, math.Inf(1)
	var bestOrder []int
	for axis := 0; axis < t.dim; axis++ {
		for _, byMax := range []bool{false, true} {
			order := make([]int, total)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				ra, rb := rects[order[a]], rects[order[b]]
				if byMax {
					return ra.Max[axis] < rb.Max[axis]
				}
				return ra.Min[axis] < rb.Min[axis]
			})
			margin := 0.0
			for cut := t.min; cut <= total-t.min; cut++ {
				l, r := groupRects(rects, order, cut)
				margin += l.Margin() + r.Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis, bestOrder = margin, axis, order
			}
		}
	}
	_ = bestAxis
	// Choose the cut on the winning ordering.
	bestCut, bestOverlap, bestArea := t.min, math.Inf(1), math.Inf(1)
	for cut := t.min; cut <= total-t.min; cut++ {
		l, r := groupRects(rects, bestOrder, cut)
		ov := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestCut, bestOverlap, bestArea = cut, ov, area
		}
	}
	return bestOrder, bestCut
}

func groupRects(rects []Rect, order []int, cut int) (Rect, Rect) {
	l := rects[order[0]].Copy()
	for _, idx := range order[1:cut] {
		l = l.Enlarged(rects[idx])
	}
	r := rects[order[cut]].Copy()
	for _, idx := range order[cut+1:] {
		r = r.Enlarged(rects[idx])
	}
	return l, r
}

// tighten recomputes a node's bounding rectangle from its content.
func (t *Tree) tighten(n *node) {
	if n.leaf {
		if len(n.entries) == 0 {
			return
		}
		r := PointRect(n.entries[0].Point)
		for _, e := range n.entries[1:] {
			r = r.Enlarged(PointRect(e.Point))
		}
		n.rect = r
		return
	}
	if len(n.children) == 0 {
		return
	}
	r := n.children[0].rect.Copy()
	for _, c := range n.children[1:] {
		r = r.Enlarged(c.rect)
	}
	n.rect = r
}

// checkInvariants verifies structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	count := 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if n.leaf {
			if n.level != 0 {
				return fmt.Errorf("leaf at level %d", n.level)
			}
			count += len(n.entries)
			if !isRoot && (len(n.entries) < t.min || len(n.entries) > t.max) {
				return fmt.Errorf("leaf fill %d outside [%d,%d]", len(n.entries), t.min, t.max)
			}
			for _, e := range n.entries {
				if !n.rect.Contains(e.Point) {
					return fmt.Errorf("leaf rect does not contain entry %d", e.ID)
				}
			}
			return nil
		}
		if !isRoot && (len(n.children) < t.min || len(n.children) > t.max) {
			return fmt.Errorf("node fill %d outside [%d,%d]", len(n.children), t.min, t.max)
		}
		if isRoot && len(n.children) < 2 {
			return fmt.Errorf("root with %d children", len(n.children))
		}
		for _, c := range n.children {
			if c.level != n.level-1 {
				return fmt.Errorf("child level %d under level %d", c.level, n.level)
			}
			if !n.rect.ContainsRect(c.rect) {
				return fmt.Errorf("node rect does not contain child rect")
			}
			if err := walk(c, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("entry count %d, size %d", count, t.size)
	}
	return nil
}
