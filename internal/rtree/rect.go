// Package rtree implements an in-memory R*-tree (Beckmann et al.,
// SIGMOD 1990): insertion with forced reinsertion, the R* split
// (margin-driven axis choice, overlap-driven index choice), range
// search and nearest-neighbour search with MINDIST pruning.
//
// Two features serve the similarity-query framework specifically:
//
//   - Searches accept an optional per-dimension affine transformation
//     (a stretch vector and a translation vector). The search applies
//     the transformation to node rectangles *on the fly* — Algorithm 1
//     of the companion implementation paper — so one index serves many
//     safe transformations without being rebuilt.
//   - Every search reports node-access counts so the experiments can
//     compare transformed and plain traversals.
package rtree

import (
	"fmt"
	"math"
)

// Rect is an n-dimensional axis-aligned rectangle.
type Rect struct {
	Min, Max []float64
}

// NewRect validates lo <= hi in every dimension.
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("rtree: dim mismatch %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("rtree: min %g > max %g in dim %d", lo[i], hi[i], i)
		}
	}
	return Rect{Min: lo, Max: hi}, nil
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p []float64) Rect {
	lo := make([]float64, len(p))
	hi := make([]float64, len(p))
	copy(lo, p)
	copy(hi, p)
	return Rect{Min: lo, Max: hi}
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r.Min) }

// Copy returns a deep copy.
func (r Rect) Copy() Rect {
	lo := make([]float64, len(r.Min))
	hi := make([]float64, len(r.Max))
	copy(lo, r.Min)
	copy(hi, r.Max)
	return Rect{Min: lo, Max: hi}
}

// Overlaps reports whether two rectangles intersect (closed).
func (r Rect) Overlaps(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || r.Max[i] < o.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r contains point p (closed).
func (r Rect) Contains(p []float64) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether r fully contains o.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Area returns the hyper-volume.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the summed edge lengths (the R* split criterion).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Enlarged returns the minimum rectangle covering r and o.
func (r Rect) Enlarged(o Rect) Rect {
	out := r.Copy()
	for i := range out.Min {
		if o.Min[i] < out.Min[i] {
			out.Min[i] = o.Min[i]
		}
		if o.Max[i] > out.Max[i] {
			out.Max[i] = o.Max[i]
		}
	}
	return out
}

// Enlargement returns the area increase of covering o as well.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Enlarged(o).Area() - r.Area()
}

// OverlapArea returns the volume of the intersection.
func (r Rect) OverlapArea(o Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], o.Min[i])
		hi := math.Min(r.Max[i], o.Max[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Center returns the rectangle's center point.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// MinDist returns the squared MINDIST from point p to the rectangle
// (Roussopoulos et al.): 0 when p is inside, otherwise the squared
// distance to the nearest face.
func (r Rect) MinDist(p []float64) float64 {
	d := 0.0
	for i := range p {
		switch {
		case p[i] < r.Min[i]:
			d += (r.Min[i] - p[i]) * (r.Min[i] - p[i])
		case p[i] > r.Max[i]:
			d += (p[i] - r.Max[i]) * (p[i] - r.Max[i])
		}
	}
	return d
}

// Affine is a per-dimension linear transformation x -> A*x + B — the
// safe transformation class of the framework restricted to the real
// feature space (Theorem 1/2 of the companion paper). Negative
// stretches are allowed; rectangle images swap their bounds per
// dimension, preserving safety.
//
// Circular optionally marks dimensions as angles with period 2π (the
// phase dimensions of the polar feature space of Theorem 3). Points in
// circular dimensions are wrapped back into [-π, π); rectangle images
// that would cross the ±π seam are widened to the full circle, which
// preserves the no-false-dismissal guarantee (widening an MBR can only
// add false hits, which verification removes).
type Affine struct {
	A, B     []float64
	Circular []bool // nil means no circular dimensions
}

// Identity returns the identity transformation in dim dimensions.
func Identity(dim int) *Affine {
	a := make([]float64, dim)
	b := make([]float64, dim)
	for i := range a {
		a[i] = 1
	}
	return &Affine{A: a, B: b}
}

// Validate checks dimensions.
func (t *Affine) Validate(dim int) error {
	if len(t.A) != dim || len(t.B) != dim {
		return fmt.Errorf("rtree: affine dim %d/%d, want %d", len(t.A), len(t.B), dim)
	}
	if t.Circular != nil && len(t.Circular) != dim {
		return fmt.Errorf("rtree: circular mask dim %d, want %d", len(t.Circular), dim)
	}
	return nil
}

// WrapAngle maps x into [-π, π).
func WrapAngle(x float64) float64 {
	x = math.Mod(x+math.Pi, 2*math.Pi)
	if x < 0 {
		x += 2 * math.Pi
	}
	return x - math.Pi
}

// Apply maps a point, wrapping circular dimensions into [-π, π).
func (t *Affine) Apply(p []float64) []float64 {
	return t.ApplyInto(p, make([]float64, len(p)))
}

// ApplyInto is Apply writing into dst (len(dst) == len(p)); the search
// loops use it to stay allocation-free.
func (t *Affine) ApplyInto(p, dst []float64) []float64 {
	for i := range p {
		dst[i] = t.A[i]*p[i] + t.B[i]
		if t.Circular != nil && t.Circular[i] {
			dst[i] = WrapAngle(dst[i])
		}
	}
	return dst
}

// ApplyRect maps a rectangle, swapping bounds where A is negative so
// the image is again a valid rectangle. This is exactly the safety
// property: images of rectangles are rectangles, interiors map to
// interiors. Circular dimensions wrap; images crossing the ±π seam
// widen to the full circle.
func (t *Affine) ApplyRect(r Rect) Rect {
	return t.ApplyRectInto(r, make([]float64, len(r.Min)), make([]float64, len(r.Max)))
}

// ApplyRectInto is ApplyRect writing into the supplied bound slices;
// the search loops use it to stay allocation-free.
func (t *Affine) ApplyRectInto(r Rect, lo, hi []float64) Rect {
	for i := range r.Min {
		a, b := t.A[i]*r.Min[i]+t.B[i], t.A[i]*r.Max[i]+t.B[i]
		if a > b {
			a, b = b, a
		}
		if t.Circular != nil && t.Circular[i] {
			w := b - a
			if w >= 2*math.Pi {
				a, b = -math.Pi, math.Pi
			} else {
				a = WrapAngle(a)
				b = a + w
				if b > math.Pi {
					a, b = -math.Pi, math.Pi
				}
			}
		}
		lo[i], hi[i] = a, b
	}
	return Rect{Min: lo, Max: hi}
}
