package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// SearchStats reports traversal effort: the experiments compare node
// accesses of transformed and plain searches (the companion paper's
// claim is that they are identical for the identity transformation).
type SearchStats struct {
	NodeAccesses int
	EntryTests   int
}

// Search returns the IDs of all points inside the query rectangle.
func (t *Tree) Search(q Rect) ([]int, SearchStats, error) {
	return t.SearchTransformed(q, nil)
}

// SearchTransformed searches the *image* of the index under tf: it
// returns the IDs of all points p with tf(p) inside the query
// rectangle. Node rectangles are transformed on the fly (Algorithm 1/2
// of the companion paper); the index itself is untouched, so one index
// serves any number of safe transformations. tf == nil means identity.
func (t *Tree) SearchTransformed(q Rect, tf *Affine) ([]int, SearchStats, error) {
	var st SearchStats
	if len(q.Min) != t.dim {
		return nil, st, fmt.Errorf("rtree: query dim %d, want %d", len(q.Min), t.dim)
	}
	if tf != nil {
		if err := tf.Validate(t.dim); err != nil {
			return nil, st, err
		}
	}
	if t.root == nil {
		return nil, st, nil
	}
	// Scratch buffers keep the transformed traversal allocation-free.
	var ptBuf, loBuf, hiBuf []float64
	if tf != nil {
		ptBuf = make([]float64, t.dim)
		loBuf = make([]float64, t.dim)
		hiBuf = make([]float64, t.dim)
	}
	var out []int
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodeAccesses++
		if n.leaf {
			for _, e := range n.entries {
				st.EntryTests++
				p := e.Point
				if tf != nil {
					p = tf.ApplyInto(p, ptBuf)
				}
				if q.Contains(p) {
					out = append(out, e.ID)
				}
			}
			continue
		}
		for _, c := range n.children {
			r := c.rect
			if tf != nil {
				r = tf.ApplyRectInto(r, loBuf, hiBuf)
			}
			if q.Overlaps(r) {
				stack = append(stack, c)
			}
		}
	}
	sort.Ints(out)
	return out, st, nil
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	ID   int
	Dist float64 // Euclidean distance in the (transformed) space
}

// NearestK returns the k nearest points to the query point, nearest
// first. With tf non-nil, distances are measured between tf(point) and
// the query — nearest-neighbour search in the transformed space,
// pruned by MINDIST on transformed node rectangles.
func (t *Tree) NearestK(q []float64, k int, tf *Affine) ([]Neighbor, SearchStats, error) {
	var st SearchStats
	if len(q) != t.dim {
		return nil, st, fmt.Errorf("rtree: query dim %d, want %d", len(q), t.dim)
	}
	if tf != nil {
		if err := tf.Validate(t.dim); err != nil {
			return nil, st, err
		}
	}
	if t.root == nil || k <= 0 {
		return nil, st, nil
	}
	pq := &nnHeap{}
	push := func(n *node, e *Entry, d float64) {
		heap.Push(pq, nnItem{node: n, entry: e, dist: d})
	}
	push(t.root, nil, t.transformedMinDist(t.root.rect, q, tf))
	var out []Neighbor
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nnItem)
		if len(out) == k && it.dist > out[len(out)-1].Dist {
			break
		}
		if it.entry != nil {
			if len(out) < k {
				out = append(out, Neighbor{ID: it.entry.ID, Dist: it.dist})
			}
			continue
		}
		n := it.node
		st.NodeAccesses++
		if n.leaf {
			for i := range n.entries {
				st.EntryTests++
				e := &n.entries[i]
				p := e.Point
				if tf != nil {
					p = tf.Apply(p)
				}
				push(nil, e, math.Sqrt(sqDist(p, q)))
			}
			continue
		}
		for _, c := range n.children {
			push(c, nil, t.transformedMinDist(c.rect, q, tf))
		}
	}
	return out, st, nil
}

func (t *Tree) transformedMinDist(r Rect, q []float64, tf *Affine) float64 {
	if tf != nil {
		r = tf.ApplyRect(r)
	}
	return math.Sqrt(r.MinDist(q))
}

type nnItem struct {
	node  *node
	entry *Entry
	dist  float64
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
