// Package pattern implements the pattern language P of the PODS'95
// similarity-query framework for the sequence domain: regular
// expressions over byte symbols, compiled to Thompson NFAs.
//
// An expression in P denotes a set of sequences. The framework's
// similarity predicate "x ≈ t(e) within c" asks whether x can be
// transformed, at cost ≤ c, into *some* member of the set denoted by e;
// internal/patdist evaluates that by searching the product of the edit
// dynamic program with the NFA exposed here.
//
// Supported syntax: literals, '.', character classes [a-z0-9] and [^..],
// grouping (...), alternation |, and the closures * + ?. Backslash
// escapes the next character.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern is a compiled pattern expression.
type Pattern struct {
	src string
	ast node
	nfa *NFA
}

// Compile parses and compiles a pattern expression.
func Compile(src string) (*Pattern, error) {
	p := &parser{src: src}
	ast, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pattern: unexpected %q at %d in %q", p.src[p.pos], p.pos, src)
	}
	return &Pattern{src: src, ast: ast, nfa: buildNFA(ast)}, nil
}

// MustCompile is Compile that panics on error; for tests and fixed
// literals.
func MustCompile(src string) *Pattern {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Literal returns a pattern that matches exactly s, escaping any
// metacharacters. It realises the framework's trivial constant
// patterns.
func Literal(s string) *Pattern {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(`.|*+?()[]\^`, s[i]) >= 0 {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return MustCompile(b.String())
}

// String returns the pattern source.
func (p *Pattern) String() string { return p.src }

// NFA returns the compiled automaton. Callers must not modify it.
func (p *Pattern) NFA() *NFA { return p.nfa }

// Match reports whether s is a member of the set denoted by the pattern
// (full-string anchoring, as the framework's patterns denote whole
// objects).
func (p *Pattern) Match(s string) bool {
	cur := p.nfa.closure(map[int]bool{p.nfa.Start: true})
	for i := 0; i < len(s); i++ {
		next := make(map[int]bool)
		for st := range cur {
			for _, e := range p.nfa.States[st].Edges {
				if e.Set.Contains(s[i]) {
					next[e.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = p.nfa.closure(next)
	}
	return cur[p.nfa.Accept]
}

// Enumerate returns up to limit members of the pattern's language with
// length at most maxLen, in shortlex order. It is the brute-force
// baseline in the F4 experiment and the oracle in tests.
func (p *Pattern) Enumerate(maxLen, limit int) []string {
	type cfg struct {
		states map[int]bool
		s      string
	}
	var out []string
	seen := map[string]bool{}
	queue := []cfg{{states: p.nfa.closure(map[int]bool{p.nfa.Start: true}), s: ""}}
	for len(queue) > 0 && len(out) < limit {
		c := queue[0]
		queue = queue[1:]
		if c.states[p.nfa.Accept] && !seen[c.s] {
			seen[c.s] = true
			out = append(out, c.s)
			if len(out) >= limit {
				break
			}
		}
		if len(c.s) >= maxLen {
			continue
		}
		// All symbols leaving the current state set, in order.
		var symset ByteSet
		for st := range c.states {
			for _, e := range p.nfa.States[st].Edges {
				symset = symset.Union(e.Set)
			}
		}
		for _, b := range symset.Symbols() {
			next := make(map[int]bool)
			for st := range c.states {
				for _, e := range p.nfa.States[st].Edges {
					if e.Set.Contains(b) {
						next[e.To] = true
					}
				}
			}
			queue = append(queue, cfg{states: p.nfa.closure(next), s: c.s + string(b)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// ---- AST ----

type node interface{ isNode() }

type litNode struct{ set ByteSet } // one symbol from set
type emptyNode struct{}            // ε
type concatNode struct{ l, r node }
type altNode struct{ l, r node }
type starNode struct{ n node }
type plusNode struct{ n node }
type questNode struct{ n node }

func (litNode) isNode()    {}
func (emptyNode) isNode()  {}
func (concatNode) isNode() {}
func (altNode) isNode()    {}
func (starNode) isNode()   {}
func (plusNode) isNode()   {}
func (questNode) isNode()  {}

// ---- parser ----

type parser struct {
	src string
	pos int
}

func (p *parser) peek() (byte, bool) {
	if p.pos < len(p.src) {
		return p.src[p.pos], true
	}
	return 0, false
}

func (p *parser) parseAlt() (node, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return l, nil
		}
		p.pos++
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		l = altNode{l, r}
	}
}

func (p *parser) parseConcat() (node, error) {
	var parts []node
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		n, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	if len(parts) == 0 {
		return emptyNode{}, nil
	}
	out := parts[0]
	for _, n := range parts[1:] {
		out = concatNode{out, n}
	}
	return out, nil
}

func (p *parser) parseRepeat() (node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return n, nil
		}
		switch c {
		case '*':
			p.pos++
			n = starNode{n}
		case '+':
			p.pos++
			n = plusNode{n}
		case '?':
			p.pos++
			n = questNode{n}
		default:
			return n, nil
		}
	}
}

func (p *parser) parseAtom() (node, error) {
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("pattern: unexpected end of %q", p.src)
	}
	switch c {
	case '(':
		p.pos++
		n, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return nil, fmt.Errorf("pattern: missing ')' in %q", p.src)
		}
		p.pos++
		return n, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		var all ByteSet
		all = all.Negate() // every byte
		return litNode{set: all}, nil
	case '\\':
		p.pos++
		e, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("pattern: trailing backslash in %q", p.src)
		}
		p.pos++
		var s ByteSet
		s = s.Add(e)
		return litNode{set: s}, nil
	case '*', '+', '?', '|', ')':
		return nil, fmt.Errorf("pattern: unexpected %q at %d in %q", c, p.pos, p.src)
	default:
		p.pos++
		var s ByteSet
		s = s.Add(c)
		return litNode{set: s}, nil
	}
}

func (p *parser) parseClass() (node, error) {
	p.pos++ // consume '['
	var set ByteSet
	negate := false
	if c, ok := p.peek(); ok && c == '^' {
		negate = true
		p.pos++
	}
	empty := true
	for {
		c, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("pattern: missing ']' in %q", p.src)
		}
		if c == ']' && !empty {
			p.pos++
			break
		}
		if c == '\\' {
			p.pos++
			e, ok := p.peek()
			if !ok {
				return nil, fmt.Errorf("pattern: trailing backslash in %q", p.src)
			}
			c = e
		}
		p.pos++
		empty = false
		// Range a-z?
		if n, ok := p.peek(); ok && n == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, _ := p.peek()
			if hi == '\\' {
				p.pos++
				hi, _ = p.peek()
			}
			p.pos++
			if hi < c {
				return nil, fmt.Errorf("pattern: bad range %q-%q in %q", c, hi, p.src)
			}
			set = set.AddRange(c, hi)
			continue
		}
		set = set.Add(c)
	}
	if negate {
		set = set.Negate()
	}
	return litNode{set: set}, nil
}

// ---- NFA ----

// NFA is a Thompson automaton with a single start and accept state.
type NFA struct {
	Start  int
	Accept int
	States []State
}

// State holds the outgoing transitions of one NFA state.
type State struct {
	Eps   []int
	Edges []Edge
}

// Edge is a symbol transition labelled by a byte set.
type Edge struct {
	Set ByteSet
	To  int
}

type builder struct{ states []State }

func (b *builder) newState() int {
	b.states = append(b.states, State{})
	return len(b.states) - 1
}

func (b *builder) eps(from, to int) {
	b.states[from].Eps = append(b.states[from].Eps, to)
}

func (b *builder) edge(from int, set ByteSet, to int) {
	b.states[from].Edges = append(b.states[from].Edges, Edge{Set: set, To: to})
}

// build returns (start, accept) for the fragment of n.
func (b *builder) build(n node) (int, int) {
	switch n := n.(type) {
	case emptyNode:
		s, a := b.newState(), b.newState()
		b.eps(s, a)
		return s, a
	case litNode:
		s, a := b.newState(), b.newState()
		b.edge(s, n.set, a)
		return s, a
	case concatNode:
		ls, la := b.build(n.l)
		rs, ra := b.build(n.r)
		b.eps(la, rs)
		return ls, ra
	case altNode:
		s, a := b.newState(), b.newState()
		ls, la := b.build(n.l)
		rs, ra := b.build(n.r)
		b.eps(s, ls)
		b.eps(s, rs)
		b.eps(la, a)
		b.eps(ra, a)
		return s, a
	case starNode:
		s, a := b.newState(), b.newState()
		is, ia := b.build(n.n)
		b.eps(s, is)
		b.eps(s, a)
		b.eps(ia, is)
		b.eps(ia, a)
		return s, a
	case plusNode:
		is, ia := b.build(n.n)
		a := b.newState()
		b.eps(ia, is)
		b.eps(ia, a)
		return is, a
	case questNode:
		s, a := b.newState(), b.newState()
		is, ia := b.build(n.n)
		b.eps(s, is)
		b.eps(s, a)
		b.eps(ia, a)
		return s, a
	default:
		panic(fmt.Sprintf("pattern: unknown node %T", n))
	}
}

func buildNFA(ast node) *NFA {
	b := &builder{}
	s, a := b.build(ast)
	return &NFA{Start: s, Accept: a, States: b.states}
}

// closure expands a state set by ε-transitions in place and returns it.
func (n *NFA) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.States[s].Eps {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
	return set
}

// Closure returns the ε-closure of the given states as a sorted slice;
// exported for the product construction in internal/patdist.
func (n *NFA) Closure(states ...int) []int {
	set := make(map[int]bool, len(states))
	for _, s := range states {
		set[s] = true
	}
	n.closure(set)
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of NFA states.
func (n *NFA) Size() int { return len(n.States) }

// ---- ByteSet ----

// ByteSet is a set of byte symbols as a 256-bit bitmap.
type ByteSet [4]uint64

// Add returns the set with b added.
func (s ByteSet) Add(b byte) ByteSet {
	s[b>>6] |= 1 << (b & 63)
	return s
}

// AddRange returns the set with all of lo..hi (inclusive) added.
func (s ByteSet) AddRange(lo, hi byte) ByteSet {
	for c := int(lo); c <= int(hi); c++ {
		s = s.Add(byte(c))
	}
	return s
}

// Contains reports whether b is in the set.
func (s ByteSet) Contains(b byte) bool { return s[b>>6]&(1<<(b&63)) != 0 }

// Negate returns the complement of the set.
func (s ByteSet) Negate() ByteSet {
	for i := range s {
		s[i] = ^s[i]
	}
	return s
}

// Union returns the union of two sets.
func (s ByteSet) Union(o ByteSet) ByteSet {
	for i := range s {
		s[i] |= o[i]
	}
	return s
}

// Count returns the number of symbols in the set.
func (s ByteSet) Count() int {
	n := 0
	for c := 0; c < 256; c++ {
		if s.Contains(byte(c)) {
			n++
		}
	}
	return n
}

// Symbols returns the set's members in increasing order.
func (s ByteSet) Symbols() []byte {
	var out []byte
	for c := 0; c < 256; c++ {
		if s.Contains(byte(c)) {
			out = append(out, byte(c))
		}
	}
	return out
}
