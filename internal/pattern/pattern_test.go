package pattern

import (
	"math/rand"
	"regexp"
	"testing"
)

func TestMatchBasics(t *testing.T) {
	for _, tc := range []struct {
		pat string
		yes []string
		no  []string
	}{
		{"abc", []string{"abc"}, []string{"", "ab", "abcd", "abd"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab", "c"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b", "ab"}},
		{"a+", []string{"a", "aa"}, []string{"", "b"}},
		{"a?b", []string{"b", "ab"}, []string{"", "aab"}},
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "aba"}},
		{"a(b|c)*d", []string{"ad", "abd", "acd", "abcbd"}, []string{"a", "d", "abc"}},
		{".", []string{"a", "z", "!"}, []string{"", "ab"}},
		{".*", []string{"", "anything at all"}, nil},
		{"[abc]", []string{"a", "b", "c"}, []string{"d", ""}},
		{"[a-c]+", []string{"a", "abc", "ccc"}, []string{"", "ad"}},
		{"[^a]", []string{"b", "z"}, []string{"a", ""}},
		{"a\\*b", []string{"a*b"}, []string{"ab", "aab"}},
		{"", []string{""}, []string{"a"}},
		{"x|", []string{"x", ""}, []string{"y"}},
		{"[a\\]b]", []string{"a", "]", "b"}, []string{"c"}},
	} {
		p, err := Compile(tc.pat)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.pat, err)
			continue
		}
		for _, s := range tc.yes {
			if !p.Match(s) {
				t.Errorf("pattern %q should match %q", tc.pat, s)
			}
		}
		for _, s := range tc.no {
			if p.Match(s) {
				t.Errorf("pattern %q should not match %q", tc.pat, s)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pat := range []string{
		"(", ")", "(ab", "a)", "*", "+a", "?",
		"[", "[]", "[a", "a\\", "[z-a]",
	} {
		if _, err := Compile(pat); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", pat)
		}
	}
}

func TestLiteral(t *testing.T) {
	for _, s := range []string{"", "abc", "a*b", "x|y", "(a)", "[z]", `a\b`, "a.b?c+"} {
		p := Literal(s)
		if !p.Match(s) {
			t.Errorf("Literal(%q) does not match itself", s)
		}
		if s != "" && p.Match(s+"x") {
			t.Errorf("Literal(%q) matches %q", s, s+"x")
		}
	}
}

// TestAgainstStdlib fuzzes our matcher against regexp on a common
// syntax subset.
func TestAgainstStdlib(t *testing.T) {
	pats := []string{
		"abc", "a*", "(ab)*c", "a(b|c)+d?", "[abc]*", "[a-d][a-d]",
		"a|bb|ccc", "(a|b)(a|b)(a|b)", "a?b?c?", "(ab|ba)*",
	}
	rng := rand.New(rand.NewSource(77))
	alpha := []byte("abcd")
	for _, pat := range pats {
		mine := MustCompile(pat)
		std := regexp.MustCompile("^(?:" + pat + ")$")
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(8)
			b := make([]byte, n)
			for i := range b {
				b[i] = alpha[rng.Intn(4)]
			}
			s := string(b)
			if got, want := mine.Match(s), std.MatchString(s); got != want {
				t.Fatalf("pattern %q on %q: got %v, stdlib %v", pat, s, got, want)
			}
		}
	}
}

func TestEnumerate(t *testing.T) {
	p := MustCompile("a(b|c)d")
	got := p.Enumerate(5, 100)
	want := []string{"abd", "acd"}
	if len(got) != len(want) {
		t.Fatalf("Enumerate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Enumerate = %v, want %v", got, want)
		}
	}
}

func TestEnumerateStar(t *testing.T) {
	p := MustCompile("(ab)*")
	got := p.Enumerate(6, 100)
	want := []string{"", "ab", "abab", "ababab"}
	if len(got) != len(want) {
		t.Fatalf("Enumerate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Enumerate[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	p := MustCompile("[ab]*")
	got := p.Enumerate(10, 5)
	if len(got) != 5 {
		t.Fatalf("Enumerate limit: got %d members", len(got))
	}
	for _, s := range got {
		if !p.Match(s) {
			t.Errorf("enumerated %q does not match", s)
		}
	}
}

func TestEnumerateMembersMatch(t *testing.T) {
	for _, pat := range []string{"a(b|c)*d", "[ab]?[cd]+", "x|yy|zzz"} {
		p := MustCompile(pat)
		for _, s := range p.Enumerate(6, 200) {
			if !p.Match(s) {
				t.Errorf("pattern %q enumerated non-member %q", pat, s)
			}
		}
	}
}

func TestNFAClosure(t *testing.T) {
	p := MustCompile("a*")
	nfa := p.NFA()
	cl := nfa.Closure(nfa.Start)
	// Start's closure must include the accept state (ε matches).
	found := false
	for _, s := range cl {
		if s == nfa.Accept {
			found = true
		}
	}
	if !found {
		t.Error("closure of start does not reach accept for a*")
	}
	if nfa.Size() <= 0 {
		t.Error("NFA has no states")
	}
}

func TestByteSet(t *testing.T) {
	var s ByteSet
	s = s.Add('a').Add('z')
	if !s.Contains('a') || !s.Contains('z') || s.Contains('b') {
		t.Error("Add/Contains wrong")
	}
	if got := s.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	r := ByteSet{}.AddRange('a', 'd')
	if r.Count() != 4 || !r.Contains('c') {
		t.Error("AddRange wrong")
	}
	n := s.Negate()
	if n.Contains('a') || !n.Contains('b') {
		t.Error("Negate wrong")
	}
	if got := n.Count(); got != 254 {
		t.Errorf("Negate Count = %d, want 254", got)
	}
	u := s.Union(r)
	if u.Count() != 5 { // a-d plus z (a overlaps)
		t.Errorf("Union Count = %d, want 5", u.Count())
	}
	syms := r.Symbols()
	if string(syms) != "abcd" {
		t.Errorf("Symbols = %q, want abcd", syms)
	}
}

func TestDotMatchesAnyByte(t *testing.T) {
	p := MustCompile(".")
	for c := 0; c < 256; c++ {
		if !p.Match(string([]byte{byte(c)})) {
			t.Fatalf(". does not match byte %d", c)
		}
	}
}

func TestDeepNesting(t *testing.T) {
	p := MustCompile("((((a))))*")
	if !p.Match("aaa") || p.Match("b") {
		t.Error("deep nesting broken")
	}
}
