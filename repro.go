// Package repro is the public facade of the similarity-query library —
// a from-scratch Go reproduction of the framework of "Similarity-Based
// Queries" (Jagadish, Mendelzon, Milo; PODS 1995).
//
// The framework has three components:
//
//   - a pattern language P (regular expressions over sequences;
//     CompilePattern / LiteralPattern),
//   - a transformation rule language T (cost-weighted rewrite rules;
//     NewRuleSet / ParseRuleSet / UnitEdits), and
//   - a query language L (SQL-flavoured relational calculus with
//     similarity predicates; NewQueryEngine.Execute).
//
// Object A is similar to object B when B can be reduced to A by a
// sequence of transformations at bounded total cost; the minimal cost
// is the transformation distance. Three evaluators compute it, fastest
// applicable first:
//
//   - NewEditCalculator: polynomial dynamic programming for edit-like
//     rule sets (single-symbol insert/delete/substitute),
//   - NewTransformEngine: budget-bounded exact search for arbitrary
//     decidable rule sets,
//   - NewEvaluator over a Domain: the fully general, two-sided distance
//     of the paper for any object domain (sequences, time series, ...).
//
// The time-series instantiation (NewTimeSeriesDB, MovingAvg, ReverseT)
// follows the framework's published special case: DFT feature spaces,
// safe spectral transformations and an R*-tree searched with the
// transformation applied on the fly.
//
// Beyond string and time-series transformation distances, the engine
// carries a pluggable metric layer (DistanceMetric, Vector): relations
// may hold a float-vector column, the registered metrics (L2, cosine)
// drive the same NEAREST / SIMILAR TO ... WITHIN predicates over it,
// and triangle-inequality metrics are served by a VP-tree index the
// way discrete distances are served by BK-trees.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/patdist"
	"repro/internal/pattern"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/transform"
	"repro/internal/tsdb"
)

// Transformation rule language T.
type (
	// Rule is one rewrite rule LHS -> RHS : cost.
	Rule = rewrite.Rule
	// RuleSet is a validated, classified collection of rules.
	RuleSet = rewrite.RuleSet
)

// Rule constructors and parsers.
var (
	// NewRuleSet validates rules into a RuleSet.
	NewRuleSet = rewrite.NewRuleSet
	// MustRuleSet is NewRuleSet that panics on error.
	MustRuleSet = rewrite.MustRuleSet
	// UnitEdits returns the unit-cost edit rule set over an alphabet
	// (Levenshtein distance).
	UnitEdits = rewrite.UnitEdits
	// Insert / Delete / Subst / Swap build single rules.
	Insert = rewrite.Insert
	Delete = rewrite.Delete
	Subst  = rewrite.Subst
	Swap   = rewrite.Swap
)

// ParseRuleSet reads the textual rule language.
func ParseRuleSet(name string, r io.Reader) (*RuleSet, error) {
	return rewrite.ParseRuleSet(name, r)
}

// Distance evaluators.
type (
	// EditCalculator computes weighted edit distances (the polynomial
	// special case) with closed cost tables.
	EditCalculator = editdp.Calculator
	// TransformEngine computes exact cost-bounded transformation
	// distances for arbitrary decidable rule sets.
	TransformEngine = transform.Engine
	// EditQueryDP is a query-scoped bit-parallel (Myers) unit-cost
	// kernel: the pattern's PEQ bitmaps are built once, then Distance /
	// Within stream candidates in O(len/64) words each.
	EditQueryDP = editdp.QueryDP
)

var (
	// NewEditCalculator builds the DP evaluator for an edit-like rule set.
	NewEditCalculator = editdp.New
	// NewTransformEngine builds the general search engine; it refuses
	// rule sets in the undecidable regime (zero-cost growth).
	NewTransformEngine = transform.NewEngine
	// Levenshtein is the classical unit-cost edit distance.
	Levenshtein = editdp.Levenshtein
	// LevenshteinWithin is the banded thresholded variant.
	LevenshteinWithin = editdp.LevenshteinWithin
	// MyersDistance is the bit-parallel unit-cost edit distance
	// (Myers 1999 / Hyyrö blocks); bit-identical to Levenshtein.
	MyersDistance = editdp.MyersDistance
	// MyersWithin is the thresholded bit-parallel variant with early
	// abandon; bit-identical verdicts to LevenshteinWithin.
	MyersWithin = editdp.MyersWithin
	// NewEditQueryDP builds a query-scoped bit-parallel kernel for one
	// pattern, amortising the PEQ tables across many candidates.
	NewEditQueryDP = editdp.NewQueryDP
)

// Pattern language P.
type (
	// Pattern is a compiled regular pattern denoting a set of sequences.
	Pattern = pattern.Pattern
)

var (
	// CompilePattern compiles a pattern expression.
	CompilePattern = pattern.Compile
	// LiteralPattern returns the constant pattern matching exactly s.
	LiteralPattern = pattern.Literal
)

// PatternDistance returns the minimum transformation distance from x to
// any member of the pattern's language (the predicate x ≈ t(e)).
func PatternDistance(c *EditCalculator, x string, p *Pattern) float64 {
	return patdist.Distance(c, x, p)
}

// PatternWithin is PatternDistance with a cost budget.
func PatternWithin(c *EditCalculator, x string, p *Pattern, budget float64) (float64, bool) {
	return patdist.Within(c, x, p, budget)
}

// NearestMember returns a member of the pattern's language closest to x
// within budget.
func NearestMember(c *EditCalculator, x string, p *Pattern, budget float64) (string, float64, bool) {
	return patdist.NearestMember(c, x, p, budget)
}

// Query language L and storage.
type (
	// Relation is a named collection of sequence tuples.
	Relation = relation.Relation
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// Catalog is a named set of relations.
	Catalog = relation.Catalog
	// QueryEngine parses, plans and executes similarity queries.
	QueryEngine = query.Engine
	// Result is a query result (columns, rows, chosen plan).
	Result = query.Result
	// PreparedQuery is a reusable compiled statement with '?'/':name'
	// bind parameters (Engine.Prepare); safe for concurrent execution.
	PreparedQuery = query.PreparedQuery
	// PreparedStats counts executions and planner (re)runs of a
	// prepared statement.
	PreparedStats = query.PreparedStats
	// QueryCacheStats snapshots the engine's plan-cache counters
	// (Engine.CacheStats).
	QueryCacheStats = query.CacheStats
	// EngineOption configures a QueryEngine at construction:
	// NewQueryEngine(cat, WithBatchSize(0), WithTracing(true)). The
	// Engine.Set* methods remain as thin runtime wrappers for knobs
	// that change after construction.
	EngineOption = query.Option
)

var (
	// NewRelation returns an empty relation.
	NewRelation = relation.New
	// LoadRelation reads the relation text codec.
	LoadRelation = relation.Load
	// NewCatalog returns an empty catalog.
	NewCatalog = relation.NewCatalog
	// NewQueryEngine binds a catalog to a rule-set registry,
	// configured by EngineOptions.
	NewQueryEngine = query.NewEngine
	// ParseQuery parses one statement without executing it.
	ParseQuery = query.Parse
	// WithBatchSize sets the vectorized block size (<= 0 disables
	// vectorization and every plan runs row-at-a-time).
	WithBatchSize = query.WithBatchSize
	// WithParallelism sets the worker count for parallel plans.
	WithParallelism = query.WithParallelism
	// WithParallelMinRows sets the outer-relation size from which the
	// planner shards work across workers.
	WithParallelMinRows = query.WithParallelMinRows
	// WithPlanCacheSize sets the plan-cache capacity (<= 0 disables
	// plan caching).
	WithPlanCacheSize = query.WithPlanCacheSize
	// WithTracing toggles engine-wide span collection (EXPLAIN ANALYZE
	// span trees on every Result).
	WithTracing = query.WithTracing
)

// Metric layer: pluggable continuous distances over float vectors.
type (
	// DistanceMetric is a pluggable distance over float vectors; the
	// optional capability interfaces (triangle inequality, early
	// abandon, batch evaluation) refine how the planner may use it.
	DistanceMetric = metric.Distance
	// Vector is the float-vector column type ([]float32).
	Vector = metric.Vector
)

var (
	// RegisterMetric adds a metric to the process-wide registry,
	// making its name addressable from USING clauses.
	RegisterMetric = metric.Register
	// LookupMetric resolves a registered metric by name.
	LookupMetric = metric.Lookup
	// MetricNames lists the registered metric names, sorted.
	MetricNames = metric.Names
	// ParseVector reads the canonical vector-literal syntax
	// ("[0.1,0.2]").
	ParseVector = metric.Parse
	// FormatVector renders the canonical vector-literal syntax;
	// ParseVector(FormatVector(v)) is an exact round trip.
	FormatVector = metric.Format
)

// Domain-independent framework core.
type (
	// Domain packages objects, a base distance and transformations.
	Domain = core.Domain
	// Evaluator computes the framework's two-sided similarity distance.
	Evaluator = core.Evaluator
	// Move is one applicable transformation step.
	Move = core.Move
	// TSTransformation is a time-series catalog entry.
	TSTransformation = core.TSTransformation
)

var (
	// NewEvaluator builds an evaluator over a domain.
	NewEvaluator = core.NewEvaluator
	// SequenceDomain instantiates the framework for strings.
	SequenceDomain = core.SequenceDomain
	// TimeSeriesDomain instantiates the framework for real series.
	TimeSeriesDomain = core.TimeSeriesDomain
)

// Time-series instantiation.
type (
	// TimeSeriesDB is the k-indexed time-series database.
	TimeSeriesDB = tsdb.DB
	// SpectralTransform is a safe per-coefficient transformation.
	SpectralTransform = tsdb.Transform
)

var (
	// NewTimeSeriesDB returns a database indexing k DFT coefficients.
	NewTimeSeriesDB = tsdb.New
	// MovingAvg builds the l-day moving-average transformation.
	MovingAvg = tsdb.MovingAvg
	// ReverseT builds the series-reversal transformation.
	ReverseT = tsdb.ReverseT
	// IdentityT builds the identity transformation.
	IdentityT = tsdb.Identity
	// NormalForm returns (s-mean)/std with the moments.
	NormalForm = tsdb.NormalForm
	// MovingAverage is the circular moving average in the time domain.
	MovingAverage = tsdb.MovingAverage
)
