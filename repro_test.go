package repro

import (
	"strings"
	"testing"
)

// The facade test exercises the whole public surface end to end: rules,
// distances, patterns, the query language and the time-series DB.

func TestFacadeEditDistance(t *testing.T) {
	calc, err := NewEditCalculator(UnitEdits("abcdefghijklmnopqrstuvwxyz"))
	if err != nil {
		t.Fatal(err)
	}
	if got := calc.Distance("kitten", "sitting"); got != 3 {
		t.Errorf("Distance = %g, want 3", got)
	}
	if got := Levenshtein("kitten", "sitting"); got != 3 {
		t.Errorf("Levenshtein = %d, want 3", got)
	}
	if _, ok := LevenshteinWithin("kitten", "sitting", 2); ok {
		t.Error("within 2 accepted distance 3")
	}
}

func TestFacadeGeneralEngine(t *testing.T) {
	rs := MustRuleSet("swap", []Rule{Swap('a', 'b', 1), Swap('b', 'a', 1)})
	eng, err := NewTransformEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	d, ok, err := eng.Distance("aabb", "bbaa", 10)
	if err != nil || !ok || d != 4 {
		t.Errorf("swap distance = %g,%v,%v", d, ok, err)
	}
}

func TestFacadePattern(t *testing.T) {
	p, err := CompilePattern("col(o|u)+r")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Match("colour") || p.Match("colr") {
		t.Error("pattern match wrong")
	}
	calc, err := NewEditCalculator(UnitEdits("abcdefghijklmnopqrstuvwxyz"))
	if err != nil {
		t.Fatal(err)
	}
	if got := PatternDistance(calc, "color", p); got != 0 {
		t.Errorf("PatternDistance(color) = %g", got)
	}
	if got := PatternDistance(calc, "colon", p); got != 1 {
		t.Errorf("PatternDistance(colon) = %g", got)
	}
	if _, ok := PatternWithin(calc, "colon", p, 0.5); ok {
		t.Error("PatternWithin(0.5) accepted distance 1")
	}
	y, d, ok := NearestMember(calc, "colonn", p, 5)
	if !ok || !p.Match(y) || d != 2 {
		t.Errorf("NearestMember = %q,%g,%v", y, d, ok)
	}
	lit := LiteralPattern("a+b")
	if !lit.Match("a+b") || lit.Match("aab") {
		t.Error("LiteralPattern escaped wrong")
	}
}

func TestFacadeQueryLanguage(t *testing.T) {
	cat := NewCatalog()
	words := NewRelation("words")
	for _, w := range []string{"color", "colour", "colon", "dolor", "cool"} {
		words.Insert(w, nil)
	}
	cat.Add(words)
	eng := NewQueryEngine(cat)
	if err := eng.RegisterRuleSet(MustRuleSet("edits", UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(`SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Plan, "IndexRange") {
		t.Errorf("plan = %q", res.Plan)
	}
	q, err := ParseQuery(`SELECT * FROM words LIMIT 1`)
	if err != nil || q.Limit != 1 {
		t.Errorf("ParseQuery: %v %+v", err, q)
	}
}

// TestFacadeEngineOptions pins the functional-option construction
// surface and runs a distance join through a facade-built engine in
// both execution modes.
func TestFacadeEngineOptions(t *testing.T) {
	cat := NewCatalog()
	words := NewRelation("words")
	for _, w := range []string{"color", "colour", "colon", "dolor", "cool"} {
		words.Insert(w, nil)
	}
	cat.Add(words)
	opts := []EngineOption{WithBatchSize(0), WithParallelism(2), WithParallelMinRows(8), WithPlanCacheSize(4), WithTracing(true)}
	eng := NewQueryEngine(cat, opts...)
	if err := eng.RegisterRuleSet(MustRuleSet("edits", UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())); err != nil {
		t.Fatal(err)
	}
	if eng.BatchSize() != 0 {
		t.Errorf("WithBatchSize(0): BatchSize() = %d", eng.BatchSize())
	}
	join := `SELECT a.seq, b.seq FROM words a, words b ON dist(a.seq, b.seq) <= 1 USING edits WHERE a.id != b.id`
	row, err := eng.Execute(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Rows) != 6 { // color↔{colour,colon,dolor}, both directions
		t.Errorf("row-mode join rows = %v", row.Rows)
	}
	if row.Trace == nil {
		t.Error("WithTracing(true): no span tree on the result")
	}
	batched := NewQueryEngine(cat, WithBatchSize(256))
	if err := batched.RegisterRuleSet(MustRuleSet("edits", UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())); err != nil {
		t.Fatal(err)
	}
	batch, err := batched.Execute(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Rows) != len(row.Rows) {
		t.Errorf("batch-mode join rows = %v, row-mode = %v", batch.Rows, row.Rows)
	}
}

func TestFacadeFrameworkCore(t *testing.T) {
	dom, err := SequenceDomain(MustRuleSet("del", []Rule{Delete('a', 1), Delete('b', 1)}))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(dom)
	if err != nil {
		t.Fatal(err)
	}
	d, ok, err := ev.Distance("ab", "ba", 5)
	if err != nil || !ok || d != 2 {
		t.Errorf("two-sided distance = %g,%v,%v", d, ok, err)
	}
}

func TestFacadeTimeSeries(t *testing.T) {
	db, err := NewTimeSeriesDB(2)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, 64)
	for i := range base {
		base[i] = 50 + 10*float64(i%8) + float64(i)/4
	}
	if _, err := db.Add(base); err != nil {
		t.Fatal(err)
	}
	shifted := make([]float64, 64)
	for i := range shifted {
		shifted[i] = base[i]*2 + 30 // same normal form
	}
	if _, err := db.Add(shifted); err != nil {
		t.Fatal(err)
	}
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	ms, _, err := db.RangeIndex(base, nil, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("normal-form twins not both found: %v", ms)
	}
	mavg, err := MovingAvg(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := mavg.ApplySeries(base)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := MovingAverage(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tm {
		if diff := sm[i] - tm[i]; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("moving average mismatch at %d", i)
		}
	}
	norm, mean, std, err := NormalForm(base)
	if err != nil {
		t.Fatal(err)
	}
	if mean == 0 || std == 0 || len(norm) != 64 {
		t.Error("NormalForm broken")
	}
	rev := ReverseT(64)
	ident := IdentityT(64)
	if rev.Name != "reverse" || ident.Name != "identity" {
		t.Error("transform names wrong")
	}
}
