package main

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestValidateFrac pins the workload-fraction validation: the open
// bug was that out-of-range (and NaN) values for -write-frac /
// -nearest-frac sailed through and silently produced a nonsense
// interleave, so the generator "ran" a workload nobody asked for.
func TestValidateFrac(t *testing.T) {
	cases := []struct {
		v  float64
		ok bool
	}{
		{0, true},
		{0.2, true},
		{1, true},
		{1.5, false},
		{-0.1, false},
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
	}
	for _, tc := range cases {
		err := validateFrac("-write-frac", tc.v)
		if (err == nil) != tc.ok {
			t.Errorf("validateFrac(%v): err = %v, want ok=%t", tc.v, err, tc.ok)
		}
	}
}

// TestValidateFlags pins the full flag-matrix validation: every
// combination that would silently mangle the workload — non-positive
// NEAREST k, negative vector dimension, unknown metric, non-finite or
// non-positive vector radius — must be rejected up front, and the
// string-workload defaults must not start tripping over vector-only
// rules (vec-metric/vec-radius are ignored while -vec-dim is 0).
func TestValidateFlags(t *testing.T) {
	ok := flagConfig{writeFrac: 0.2, nearestFrac: 0.1, nearestK: 10, vecDim: 0, vecMetric: "l2", vecRadius: 1}
	cases := []struct {
		name string
		mut  func(c flagConfig) flagConfig
		ok   bool
	}{
		{"defaults", func(c flagConfig) flagConfig { return c }, true},
		{"vec-l2", func(c flagConfig) flagConfig { c.vecDim = 64; return c }, true},
		{"vec-cosine", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecMetric = "cosine"; return c }, true},
		{"write-frac-nan", func(c flagConfig) flagConfig { c.writeFrac = math.NaN(); return c }, false},
		{"write-frac-high", func(c flagConfig) flagConfig { c.writeFrac = 1.5; return c }, false},
		{"nearest-frac-inf", func(c flagConfig) flagConfig { c.nearestFrac = math.Inf(1); return c }, false},
		{"nearest-k-zero", func(c flagConfig) flagConfig { c.nearestK = 0; return c }, false},
		{"nearest-k-negative", func(c flagConfig) flagConfig { c.nearestK = -3; return c }, false},
		{"vec-dim-negative", func(c flagConfig) flagConfig { c.vecDim = -1; return c }, false},
		{"vec-bad-metric", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecMetric = "nosuch"; return c }, false},
		{"vec-radius-nan", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecRadius = math.NaN(); return c }, false},
		{"vec-radius-inf", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecRadius = math.Inf(1); return c }, false},
		{"vec-radius-neg-inf", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecRadius = math.Inf(-1); return c }, false},
		{"vec-radius-zero", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecRadius = 0; return c }, false},
		{"vec-radius-negative", func(c flagConfig) flagConfig { c.vecDim = 8; c.vecRadius = -1; return c }, false},
		// Vector-only rules must not fire while the workload is strings.
		{"string-ignores-vec-metric", func(c flagConfig) flagConfig { c.vecMetric = "nosuch"; return c }, true},
		{"string-ignores-vec-radius", func(c flagConfig) flagConfig { c.vecRadius = math.NaN(); return c }, true},
	}
	for _, tc := range cases {
		err := tc.mut(ok).validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%t", tc.name, err, tc.ok)
		}
	}
}

// TestLiteralStatement pins the -no-prepare substitution for both
// workload shapes: string targets are quoted, vector targets pass
// through raw, and the radius fills the second slot when present.
func TestLiteralStatement(t *testing.T) {
	got := literalStatement("SELECT seq FROM w WHERE seq SIMILAR TO ? WITHIN ? USING edits", "abc", 2, false)
	if want := `SELECT seq FROM w WHERE seq SIMILAR TO "abc" WITHIN 2 USING edits`; got != want {
		t.Errorf("string: %q, want %q", got, want)
	}
	got = literalStatement("SELECT id FROM w WHERE vec SIMILAR TO ? WITHIN ? USING l2", "[0.5,-1]", 1.5, true)
	if want := `SELECT id FROM w WHERE vec SIMILAR TO [0.5,-1] WITHIN 1.5 USING l2`; got != want {
		t.Errorf("vec: %q, want %q", got, want)
	}
	got = literalStatement("SELECT id FROM w WHERE vec NEAREST 5 TO ? USING l2", "[1,2]", nil, true)
	if want := `SELECT id FROM w WHERE vec NEAREST 5 TO [1,2] USING l2`; got != want {
		t.Errorf("nearest: %q, want %q", got, want)
	}
}

// TestErrorCounts pins the error-class split the report and the 1%
// failure gate rely on: a non-200 response (statusError, possibly
// wrapped) counts as an HTTP error, anything else — connection resets,
// timeouts, decode failures — as a transport error.
func TestErrorCounts(t *testing.T) {
	var c errorCounts
	c.count(statusError{msg: "http://x/query: 400 Bad Request: boom"})
	c.count(fmt.Errorf("retry: %w", statusError{msg: "http://x/query: 500"}))
	c.count(errors.New("dial tcp: connection refused"))
	if c.http != 2 || c.transport != 1 {
		t.Fatalf("counts = %+v, want http=2 transport=1", c)
	}
	var other errorCounts
	other.count(errors.New("read: timeout"))
	c.add(other)
	if c.total() != 4 || c.transport != 2 {
		t.Fatalf("after add: %+v, want total=4 transport=2", c)
	}
}

// TestQuantile guards the report arithmetic the CI bench job consumes.
func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if q := quantile(sorted, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantile(sorted, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantile(sorted, 0.5); q != 2.5 {
		t.Errorf("q50 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}
