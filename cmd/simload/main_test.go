package main

import (
	"math"
	"testing"
)

// TestValidateFrac pins the workload-fraction validation: the open
// bug was that out-of-range (and NaN) values for -write-frac /
// -nearest-frac sailed through and silently produced a nonsense
// interleave, so the generator "ran" a workload nobody asked for.
func TestValidateFrac(t *testing.T) {
	cases := []struct {
		v  float64
		ok bool
	}{
		{0, true},
		{0.2, true},
		{1, true},
		{1.5, false},
		{-0.1, false},
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
	}
	for _, tc := range cases {
		err := validateFrac("-write-frac", tc.v)
		if (err == nil) != tc.ok {
			t.Errorf("validateFrac(%v): err = %v, want ok=%t", tc.v, err, tc.ok)
		}
	}
}

// TestQuantile guards the report arithmetic the CI bench job consumes.
func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if q := quantile(sorted, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantile(sorted, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantile(sorted, 0.5); q != 2.5 {
		t.Errorf("q50 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}
