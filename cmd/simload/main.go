// Command simload is a closed-loop load generator for cmd/simqd: N
// workers each keep exactly one request outstanding against the server
// and the tool reports latency quantiles and throughput, written as a
// machine-readable BENCH_serving.json for the CI bench job.
//
// Usage:
//
//	simload -addr http://127.0.0.1:8077 -c 8 -duration 10s -out BENCH_serving.json
//
// By default the workload prepares one parameterized range query and
// executes it with rotating targets and radii, which exercises the
// whole serving stack: prepared-statement binding, the planner-decision
// cache and concurrent execution. -no-prepare switches to ad-hoc
// statement text per request (plan-cache path) for comparison.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// defaultTargets are probe words over the datagen words alphabet
// (a-j); rotating them keeps the server's per-query work varied without
// changing the plan shape.
var defaultTargets = []string{
	"abcdefgh", "jihgfedc", "aabbccdd", "fghijabc", "cadgbeif",
	"hhhggffe", "abcabcab", "jjiihhgg", "degijabc", "bdfhjace",
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "simqd base URL")
	conc := flag.Int("c", 8, "concurrent workers (closed loop: one request in flight each)")
	duration := flag.Duration("duration", 10*time.Second, "run length (ignored when -n > 0)")
	count := flag.Int("n", 0, "total request budget (0 = run for -duration)")
	warmup := flag.Int("warmup", 100, "unrecorded warm-up requests")
	relName := flag.String("relation", "words", "relation to query")
	ruleSet := flag.String("ruleset", "edits", "rule set for the similarity predicate")
	radius := flag.Int("radius", 1, "WITHIN radius bound per request")
	noPrepare := flag.Bool("no-prepare", false, "send statement text per request instead of a prepared id")
	out := flag.String("out", "BENCH_serving.json", "result file ('-' for stdout)")
	var extra listFlag
	flag.Var(&extra, "query", "extra fixed statement to mix in (repeatable)")
	flag.Parse()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conc * 2}}

	if err := waitHealthy(client, *addr, 10*time.Second); err != nil {
		fail(err)
	}

	stmt := fmt.Sprintf("SELECT seq, dist FROM %s WHERE seq SIMILAR TO ? WITHIN ? USING %s LIMIT 20", *relName, *ruleSet)
	var preparedID string
	if !*noPrepare {
		id, err := prepare(client, *addr, stmt)
		if err != nil {
			fail(err)
		}
		preparedID = id
	}

	// Warm up (fills the plan and decision caches, warms connections).
	for i := 0; i < *warmup; i++ {
		body := requestBody(preparedID, stmt, defaultTargets[i%len(defaultTargets)], *radius, extra, i)
		if _, err := post(client, *addr+"/query", body); err != nil {
			fail(fmt.Errorf("warmup request: %w", err))
		}
	}

	type workerResult struct {
		latencies []float64 // milliseconds
		errors    int
	}
	results := make([]workerResult, *conc)
	deadline := time.Now().Add(*duration)
	var issued int64
	var issuedMu sync.Mutex
	takeTicket := func() (int, bool) {
		if *count <= 0 {
			return 0, time.Now().Before(deadline)
		}
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(*count) {
			return 0, false
		}
		issued++
		return int(issued), true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for wkr := 0; wkr < *conc; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			r := &results[wkr]
			for i := 0; ; i++ {
				seq, ok := takeTicket()
				if !ok {
					return
				}
				n := wkr*1_000_003 + i + seq
				body := requestBody(preparedID, stmt, defaultTargets[n%len(defaultTargets)], *radius, extra, n)
				t0 := time.Now()
				_, err := post(client, *addr+"/query", body)
				if err != nil {
					r.errors++
					continue
				}
				r.latencies = append(r.latencies, float64(time.Since(t0).Microseconds())/1000)
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	errors := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errors += r.errors
	}
	if len(all) == 0 {
		fail(fmt.Errorf("no successful requests (errors=%d)", errors))
	}
	sort.Float64s(all)
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	report := map[string]any{
		"config": map[string]any{
			"addr":        *addr,
			"concurrency": *conc,
			"duration_s":  elapsed.Seconds(),
			"prepared":    !*noPrepare,
			"statement":   stmt,
			"radius":      *radius,
			"warmup":      *warmup,
		},
		"total_requests": len(all),
		"errors":         errors,
		"throughput_rps": float64(len(all)) / elapsed.Seconds(),
		"latency_ms": map[string]float64{
			"mean": sum / float64(len(all)),
			"p50":  quantile(all, 0.50),
			"p90":  quantile(all, 0.90),
			"p99":  quantile(all, 0.99),
			"max":  all[len(all)-1],
		},
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "simload: %d requests in %.2fs (%.0f req/s), p50=%.3fms p99=%.3fms, %d errors -> %s\n",
		len(all), elapsed.Seconds(), float64(len(all))/elapsed.Seconds(),
		quantile(all, 0.5), quantile(all, 0.99), errors, *out)
	if errors > len(all)/10 {
		fail(fmt.Errorf("error rate too high: %d errors for %d successes", errors, len(all)))
	}
}

// requestBody builds one /query body: usually the prepared statement
// with rotated bindings; every len(extra)+1-th request (when -query
// statements were given) sends one of those verbatim instead.
func requestBody(preparedID, stmt, target string, radius int, extra []string, n int) map[string]any {
	if len(extra) > 0 && n%(len(extra)+4) < len(extra) {
		return map[string]any{"query": extra[n%(len(extra)+4)]}
	}
	if preparedID != "" {
		return map[string]any{"id": preparedID, "params": []any{target, radius}}
	}
	lit := fmt.Sprintf("SELECT seq, dist FROM %s WHERE seq SIMILAR TO %q WITHIN %d USING %s LIMIT 20",
		relationOf(stmt), target, radius, rulesetOf(stmt))
	return map[string]any{"query": lit}
}

// relationOf / rulesetOf recover the pieces of the canonical statement
// (simload builds it itself, so positional parsing is safe).
func relationOf(stmt string) string {
	fields := strings.Fields(stmt)
	for i, f := range fields {
		if strings.EqualFold(f, "FROM") && i+1 < len(fields) {
			return fields[i+1]
		}
	}
	return "words"
}

func rulesetOf(stmt string) string {
	fields := strings.Fields(stmt)
	for i, f := range fields {
		if strings.EqualFold(f, "USING") && i+1 < len(fields) {
			return fields[i+1]
		}
	}
	return "edits"
}

// quantile reads the q-th quantile from a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func waitHealthy(client *http.Client, addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", addr, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func prepare(client *http.Client, addr, stmt string) (string, error) {
	out, err := post(client, addr+"/prepare", map[string]any{"query": stmt})
	if err != nil {
		return "", fmt.Errorf("prepare: %w", err)
	}
	id, _ := out["id"].(string)
	if id == "" {
		return "", fmt.Errorf("prepare: no id in response %v", out)
	}
	return id, nil
}

func post(client *http.Client, url string, body map[string]any) (map[string]any, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: bad response: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %v", url, resp.Status, out["error"])
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simload: %v\n", err)
	os.Exit(1)
}
