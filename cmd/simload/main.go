// Command simload is a closed-loop load generator for cmd/simqd: N
// workers each keep exactly one request outstanding against the server
// and the tool reports latency quantiles and throughput, written as a
// machine-readable BENCH_serving.json for the CI bench job.
//
// Usage:
//
//	simload -addr http://127.0.0.1:8077 -c 8 -duration 10s -out BENCH_serving.json
//	simload -write-frac 0.2 ...   # 20% of requests are single-row /ingest writes
//
// By default the workload prepares one parameterized range query and
// executes it with rotating targets and radii, which exercises the
// whole serving stack: prepared-statement binding, the planner-decision
// cache and concurrent execution. -no-prepare switches to ad-hoc
// statement text per request (plan-cache path) for comparison.
// -write-frac > 0 turns the run into a mixed read/write workload:
// the chosen fraction of requests become POST /ingest single-row
// inserts, and the report carries separate read and write throughput
// and latency quantiles — the ingest-vs-query numbers in
// EXPERIMENTS.md come from this mode.
//
// -vec-dim > 0 switches the read workload from string similarity to
// vector similarity over the vec column: WITHIN requests carry rotating
// d-dimensional vector-literal targets with the -vec-radius bound,
// NEAREST requests (per -nearest-frac) rotate the same targets, and
// -write-frac writes ingest vector rows. -vec-metric picks the distance
// (l2 or cosine). The vector serving numbers in EXPERIMENTS.md and the
// nightly BENCH_nightly_vector.json come from this mode.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metric"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// defaultTargets are probe words over the datagen words alphabet
// (a-j); rotating them keeps the server's per-query work varied without
// changing the plan shape.
var defaultTargets = []string{
	"abcdefgh", "jihgfedc", "aabbccdd", "fghijabc", "cadgbeif",
	"hhhggffe", "abcabcab", "jjiihhgg", "degijabc", "bdfhjace",
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "simqd base URL")
	conc := flag.Int("c", 8, "concurrent workers (closed loop: one request in flight each)")
	duration := flag.Duration("duration", 10*time.Second, "run length (ignored when -n > 0)")
	count := flag.Int("n", 0, "total request budget (0 = run for -duration)")
	warmup := flag.Int("warmup", 100, "unrecorded warm-up requests")
	relName := flag.String("relation", "words", "relation to query")
	ruleSet := flag.String("ruleset", "edits", "rule set for the similarity predicate")
	radius := flag.Int("radius", 1, "WITHIN radius bound per request")
	noPrepare := flag.Bool("no-prepare", false, "send statement text per request instead of a prepared id")
	writeFrac := flag.Float64("write-frac", 0, "fraction of requests that are /ingest writes (0..1)")
	nearestFrac := flag.Float64("nearest-frac", 0, "fraction of read requests that are NEAREST top-k queries (0..1)")
	nearestK := flag.Int("nearest-k", 10, "k for the NEAREST fraction of the workload")
	vecDim := flag.Int("vec-dim", 0, "vector dimension: > 0 switches to a vector-similarity workload over the vec column")
	vecMetric := flag.String("vec-metric", "l2", "distance metric for the vector workload (l2 | cosine)")
	vecRadius := flag.Float64("vec-radius", 1.0, "WITHIN bound for the vector workload")
	label := flag.String("label", "", "workload label embedded in the report (e.g. sharded-4)")
	baseline := flag.String("baseline", "", "earlier report to compare against (adds baseline + speedup blocks)")
	out := flag.String("out", "BENCH_serving.json", "result file ('-' for stdout)")
	var extra listFlag
	flag.Var(&extra, "query", "extra fixed statement to mix in (repeatable)")
	flag.Parse()
	cfg := flagConfig{
		writeFrac:   *writeFrac,
		nearestFrac: *nearestFrac,
		nearestK:    *nearestK,
		vecDim:      *vecDim,
		vecMetric:   *vecMetric,
		vecRadius:   *vecRadius,
	}
	if err := cfg.validate(); err != nil {
		failUsage(err)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conc * 2}}

	if err := waitHealthy(client, *addr, 10*time.Second); err != nil {
		fail(err)
	}

	vec := *vecDim > 0
	stmt := fmt.Sprintf("SELECT seq, dist FROM %s WHERE seq SIMILAR TO ? WITHIN ? USING %s LIMIT 20", *relName, *ruleSet)
	nearestStmt := fmt.Sprintf("SELECT seq, dist FROM %s WHERE seq NEAREST %d TO ? USING %s", *relName, *nearestK, *ruleSet)
	targets := defaultTargets
	var radiusArg any = *radius
	if vec {
		stmt = fmt.Sprintf("SELECT id, dist FROM %s WHERE vec SIMILAR TO ? WITHIN ? USING %s LIMIT 20", *relName, *vecMetric)
		nearestStmt = fmt.Sprintf("SELECT id, dist FROM %s WHERE vec NEAREST %d TO ? USING %s", *relName, *nearestK, *vecMetric)
		targets = vecTargets(*vecDim)
		radiusArg = *vecRadius
	}
	var preparedID, nearestID string
	if !*noPrepare {
		id, err := prepare(client, *addr, stmt)
		if err != nil {
			fail(err)
		}
		preparedID = id
		if *nearestFrac > 0 {
			if nearestID, err = prepare(client, *addr, nearestStmt); err != nil {
				fail(err)
			}
		}
	}

	// Warm up (fills the plan and decision caches, warms connections).
	for i := 0; i < *warmup; i++ {
		body := requestBody(preparedID, stmt, targets[i%len(targets)], radiusArg, vec, extra, i)
		if *nearestFrac > 0 && i%2 == 1 {
			body = nearestBody(nearestID, nearestStmt, targets[i%len(targets)], vec)
		}
		if _, err := post(client, *addr+"/query", body); err != nil {
			fail(fmt.Errorf("warmup request: %w", err))
		}
	}

	type workerResult struct {
		latencies []float64 // read latencies, milliseconds
		writeLats []float64 // write latencies, milliseconds
		errs      errorCounts
		writeErrs errorCounts
	}
	results := make([]workerResult, *conc)
	deadline := time.Now().Add(*duration)
	var issued int64
	var issuedMu sync.Mutex
	takeTicket := func() (int, bool) {
		if *count <= 0 {
			return 0, time.Now().Before(deadline)
		}
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(*count) {
			return 0, false
		}
		issued++
		return int(issued), true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for wkr := 0; wkr < *conc; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			r := &results[wkr]
			for i := 0; ; i++ {
				seq, ok := takeTicket()
				if !ok {
					return
				}
				n := wkr*1_000_003 + i + seq
				// Deterministic read/write interleave: the stride 997 is
				// coprime to 1000, so write tickets spread evenly through
				// the sequence instead of forming contiguous bursts —
				// the quantiles then measure reads *under* concurrent
				// writes, not alternating single-mode phases.
				if *writeFrac > 0 && float64(n*997%1000) < *writeFrac*1000 {
					body := ingestBody(*relName, n)
					if vec {
						body = ingestVecBody(*relName, *vecDim, n)
					}
					t0 := time.Now()
					_, err := post(client, *addr+"/ingest", body)
					if err != nil {
						r.writeErrs.count(err)
						continue
					}
					r.writeLats = append(r.writeLats, float64(time.Since(t0).Microseconds())/1000)
					continue
				}
				body := requestBody(preparedID, stmt, targets[n%len(targets)], radiusArg, vec, extra, n)
				// Deterministic WITHIN/NEAREST interleave (stride 991 is
				// coprime to 1000, like the write stride below).
				if *nearestFrac > 0 && float64(n*991%1000) < *nearestFrac*1000 {
					body = nearestBody(nearestID, nearestStmt, targets[n%len(targets)], vec)
				}
				t0 := time.Now()
				_, err := post(client, *addr+"/query", body)
				if err != nil {
					r.errs.count(err)
					continue
				}
				r.latencies = append(r.latencies, float64(time.Since(t0).Microseconds())/1000)
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all, writes []float64
	var readErrs, writeErrs errorCounts
	for _, r := range results {
		all = append(all, r.latencies...)
		writes = append(writes, r.writeLats...)
		readErrs.add(r.errs)
		writeErrs.add(r.writeErrs)
	}
	errors, writeErrors := readErrs.total(), writeErrs.total()
	if len(all) == 0 && len(writes) == 0 {
		fail(fmt.Errorf("no successful requests (errors=%d)", errors+writeErrors))
	}
	sort.Float64s(all)
	sort.Float64s(writes)
	report := map[string]any{
		"config": map[string]any{
			"addr":         *addr,
			"concurrency":  *conc,
			"duration_s":   elapsed.Seconds(),
			"prepared":     !*noPrepare,
			"statement":    stmt,
			"radius":       *radius,
			"warmup":       *warmup,
			"write_frac":   *writeFrac,
			"nearest_frac": *nearestFrac,
			"nearest_k":    *nearestK,
			"vec_dim":      *vecDim,
			"vec_metric":   *vecMetric,
			"vec_radius":   *vecRadius,
		},
		"total_requests": len(all) + len(writes),
		"errors":         errors + writeErrors,
		// Back-compat top-level fields describe the read side.
		"throughput_rps": float64(len(all)) / elapsed.Seconds(),
		"latency_ms":     latencySummary(all),
		"reads": map[string]any{
			"count":            len(all),
			"errors":           errors,
			"http_errors":      readErrs.http,
			"transport_errors": readErrs.transport,
			"throughput_rps":   float64(len(all)) / elapsed.Seconds(),
			"latency_ms":       latencySummary(all),
		},
	}
	if *label != "" {
		report["label"] = *label
	}
	if *writeFrac > 0 {
		w := map[string]any{
			"count":            len(writes),
			"errors":           writeErrors,
			"http_errors":      writeErrs.http,
			"transport_errors": writeErrs.transport,
		}
		if len(writes) > 0 {
			w["throughput_rps"] = float64(len(writes)) / elapsed.Seconds()
			w["latency_ms"] = latencySummary(writes)
		}
		report["writes"] = w
	}
	if *baseline != "" {
		cmp, err := compareBaseline(*baseline, float64(len(all))/elapsed.Seconds(), all)
		if err != nil {
			fail(err)
		}
		report["baseline"] = cmp.base
		report["speedup"] = cmp.speedup
		fmt.Fprintf(os.Stderr, "simload: vs %s: p50 ×%.2f, p99 ×%.2f, throughput ×%.2f\n",
			*baseline, cmp.speedup["p50"], cmp.speedup["p99"], cmp.speedup["throughput"])
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "simload: %d reads in %.2fs (%.0f req/s), p50=%.3fms p99=%.3fms, %d errors -> %s\n",
		len(all), elapsed.Seconds(), float64(len(all))/elapsed.Seconds(),
		quantile(all, 0.5), quantile(all, 0.99), errors, *out)
	if len(writes) > 0 {
		fmt.Fprintf(os.Stderr, "simload: %d writes (%.0f req/s), p50=%.3fms p99=%.3fms, %d errors\n",
			len(writes), float64(len(writes))/elapsed.Seconds(),
			quantile(writes, 0.5), quantile(writes, 0.99), writeErrors)
	}
	// Fail the run past a 1% error rate: a load result riddled with
	// rejected or dropped requests measures error handling, not the
	// engine, and must not land in a baseline.
	if total := len(all) + len(writes) + errors + writeErrors; float64(errors+writeErrors) > 0.01*float64(total) {
		fail(fmt.Errorf("error rate too high: %d errors (%d http, %d transport) in %d requests",
			errors+writeErrors, readErrs.http+writeErrs.http, readErrs.transport+writeErrs.transport, total))
	}
}

// errorCounts classifies failed requests: http counts responses the
// server answered with a non-200 status (the request reached the engine
// and was rejected), transport counts connection/decode failures where
// no well-formed response came back at all. The two fail differently —
// http errors are usually a workload-shape bug, transport errors a
// saturated or dying server — so BENCH_serving.json reports them apart.
type errorCounts struct {
	http      int
	transport int
}

func (e *errorCounts) count(err error) {
	var se statusError
	if errors.As(err, &se) {
		e.http++
		return
	}
	e.transport++
}

func (e *errorCounts) add(o errorCounts) {
	e.http += o.http
	e.transport += o.transport
}

func (e errorCounts) total() int { return e.http + e.transport }

// baselineComparison pairs the baseline's read-side numbers with the
// speedup ratios of the current run; >1 means this run is faster.
type baselineComparison struct {
	base    map[string]any
	speedup map[string]float64
}

// compareBaseline loads an earlier report (e.g. the unsharded run) and
// computes sharded-vs-unsharded style ratios for the read side: latency
// speedups are baseline/current (lower latency ⇒ ratio above 1),
// throughput is current/baseline.
func compareBaseline(path string, rps float64, sorted []float64) (baselineComparison, error) {
	var cmp baselineComparison
	raw, err := os.ReadFile(path)
	if err != nil {
		return cmp, fmt.Errorf("baseline: %w", err)
	}
	var report struct {
		Label      string             `json:"label"`
		Throughput float64            `json:"throughput_rps"`
		Latency    map[string]float64 `json:"latency_ms"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		return cmp, fmt.Errorf("baseline %s: %w", path, err)
	}
	cmp.base = map[string]any{
		"file":           path,
		"label":          report.Label,
		"throughput_rps": report.Throughput,
		"latency_ms":     report.Latency,
	}
	cmp.speedup = map[string]float64{}
	if report.Throughput > 0 {
		cmp.speedup["throughput"] = rps / report.Throughput
	}
	for _, q := range []string{"p50", "p90", "p99", "mean"} {
		base := report.Latency[q]
		var cur float64
		switch q {
		case "p50":
			cur = quantile(sorted, 0.50)
		case "p90":
			cur = quantile(sorted, 0.90)
		case "p99":
			cur = quantile(sorted, 0.99)
		case "mean":
			for _, v := range sorted {
				cur += v
			}
			if len(sorted) > 0 {
				cur /= float64(len(sorted))
			}
		}
		if base > 0 && cur > 0 {
			cmp.speedup[q] = base / cur
		}
	}
	return cmp, nil
}

// latencySummary renders the standard quantile block over a sorted
// latency slice.
func latencySummary(sorted []float64) map[string]float64 {
	if len(sorted) == 0 {
		return map[string]float64{}
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return map[string]float64{
		"mean": sum / float64(len(sorted)),
		"p50":  quantile(sorted, 0.50),
		"p90":  quantile(sorted, 0.90),
		"p99":  quantile(sorted, 0.99),
		"max":  sorted[len(sorted)-1],
	}
}

// vecTargets builds the rotating probe vectors of the vector workload:
// ten deterministic d-dimensional points in [-1,1)^d (fixed seed, so
// every run and every baseline comparison probes the same targets),
// rendered in the canonical vector-literal syntax.
func vecTargets(dim int) []string {
	rng := rand.New(rand.NewSource(42))
	out := make([]string, 10)
	for i := range out {
		v := make(metric.Vector, dim)
		for j := range v {
			v[j] = float32(rng.Float64()*2 - 1)
		}
		out[i] = metric.Format(v)
	}
	return out
}

// nearestBody builds one NEAREST top-k request: the prepared statement
// when available, literal text otherwise.
func nearestBody(preparedID, stmt, target string, vec bool) map[string]any {
	if preparedID != "" {
		return map[string]any{"id": preparedID, "params": []any{target}}
	}
	return map[string]any{"query": literalStatement(stmt, target, nil, vec)}
}

// ingestBody builds one /ingest write: a unique single row derived from
// the request counter, over the datagen words alphabet.
func ingestBody(rel string, n int) map[string]any {
	b := make([]byte, 0, 10)
	b = append(b, 'w')
	for v := n; v > 0; v /= 10 {
		b = append(b, byte('a'+v%10))
	}
	return map[string]any{
		"relation": rel,
		"rows":     []map[string]any{{"seq": string(b), "attrs": map[string]string{"src": "simload"}}},
	}
}

// ingestVecBody builds one vector-row /ingest write, the vector derived
// deterministically from the request counter.
func ingestVecBody(rel string, dim, n int) map[string]any {
	rng := rand.New(rand.NewSource(int64(n)))
	v := make(metric.Vector, dim)
	for j := range v {
		v[j] = float32(rng.Float64()*2 - 1)
	}
	return map[string]any{
		"relation": rel,
		"rows":     []map[string]any{{"vec": metric.Format(v), "attrs": map[string]string{"src": "simload"}}},
	}
}

// requestBody builds one /query body: usually the prepared statement
// with rotated bindings; every len(extra)+1-th request (when -query
// statements were given) sends one of those verbatim instead.
func requestBody(preparedID, stmt, target string, radius any, vec bool, extra []string, n int) map[string]any {
	if len(extra) > 0 && n%(len(extra)+4) < len(extra) {
		return map[string]any{"query": extra[n%(len(extra)+4)]}
	}
	if preparedID != "" {
		return map[string]any{"id": preparedID, "params": []any{target, radius}}
	}
	return map[string]any{"query": literalStatement(stmt, target, radius, vec)}
}

// literalStatement substitutes the rotating bindings into the canonical
// parameterized statement for the -no-prepare path: the target (quoted
// for string workloads, raw vector-literal syntax for vector ones) then
// the radius, when the statement has a second slot.
func literalStatement(stmt, target string, radius any, vec bool) string {
	t := fmt.Sprintf("%q", target)
	if vec {
		t = target
	}
	s := strings.Replace(stmt, "?", t, 1)
	if radius != nil {
		s = strings.Replace(s, "?", fmt.Sprint(radius), 1)
	}
	return s
}

// quantile reads the q-th quantile from a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func waitHealthy(client *http.Client, addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s: %v", addr, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func prepare(client *http.Client, addr, stmt string) (string, error) {
	out, err := post(client, addr+"/prepare", map[string]any{"query": stmt})
	if err != nil {
		return "", fmt.Errorf("prepare: %w", err)
	}
	id, _ := out["id"].(string)
	if id == "" {
		return "", fmt.Errorf("prepare: no id in response %v", out)
	}
	return id, nil
}

func post(client *http.Client, url string, body map[string]any) (map[string]any, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: bad response: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError{msg: fmt.Sprintf("%s: %s: %v", url, resp.Status, out["error"])}
	}
	return out, nil
}

// statusError marks a request the server answered with a non-200
// status: the transport worked, the engine rejected the request.
type statusError struct{ msg string }

func (e statusError) Error() string { return e.msg }

// flagConfig gathers the workload-shape flags for validation; every
// combination the generator would silently mangle is rejected up front.
type flagConfig struct {
	writeFrac   float64
	nearestFrac float64
	nearestK    int
	vecDim      int
	vecMetric   string
	vecRadius   float64
}

// validate rejects the flag combinations that would otherwise produce a
// nonsense workload: out-of-range or NaN fractions, a non-positive
// NEAREST k (the server rejects k < 1 per request, so every read would
// 400), a negative vector dimension, an unregistered metric name, and a
// non-finite or non-positive vector radius (NaN slips through plain
// range checks — every comparison with NaN is false — and ±Inf turns
// WITHIN into a full-table dump or a constant miss).
func (c flagConfig) validate() error {
	if err := validateFrac("-write-frac", c.writeFrac); err != nil {
		return err
	}
	if err := validateFrac("-nearest-frac", c.nearestFrac); err != nil {
		return err
	}
	if c.nearestK <= 0 {
		return fmt.Errorf("-nearest-k must be >= 1, got %d", c.nearestK)
	}
	if c.vecDim < 0 {
		return fmt.Errorf("-vec-dim must be >= 0, got %d", c.vecDim)
	}
	if c.vecDim > 0 {
		if _, ok := metric.Lookup(c.vecMetric); !ok {
			return fmt.Errorf("-vec-metric %q is not a registered metric (have: %s)",
				c.vecMetric, strings.Join(metric.Names(), ", "))
		}
		if math.IsNaN(c.vecRadius) || math.IsInf(c.vecRadius, 0) || c.vecRadius <= 0 {
			return fmt.Errorf("-vec-radius must be a finite positive number, got %g", c.vecRadius)
		}
	}
	return nil
}

// validateFrac checks that a workload-mix fraction lies in [0,1]. NaN
// is rejected explicitly: it slips through a plain `< 0 || > 1` range
// check (every comparison with NaN is false) and would silently skew
// the read/write interleave arithmetic.
func validateFrac(name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%s must be in [0,1], got %g", name, v)
	}
	return nil
}

// failUsage reports a flag-validation error with the usage text and
// exits non-zero (2, matching flag.Parse's own exit code for bad
// flags).
func failUsage(err error) {
	fmt.Fprintf(os.Stderr, "simload: %v\n", err)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simload: %v\n", err)
	os.Exit(1)
}
