// Command benchcheck compares `go test -bench` output against a
// checked-in baseline with benchstat-style tolerance, and fails CI on
// regressions of the gated benchmarks.
//
// Usage:
//
//	go test -bench . -benchtime=3x -count=3 ./... | tee bench.txt
//	benchcheck -input bench.txt -baseline BENCH_baseline.json
//	benchcheck -input bench.txt -baseline BENCH_baseline.json -update
//
// Repeated runs of one benchmark (-count > 1) collapse to their median,
// which is what benchstat reports as the center.
//
// The baseline stores two kinds of entries:
//
//   - absolute: {"ns_per_op": N} — compared directly; machine-speed
//     dependent, so these only warn unless matched by -gate AND the
//     baseline was recorded on comparable hardware.
//   - relative: {"ratio_of": "OtherBench", "max_ratio": R} — the
//     current run's ns(name)/ns(OtherBench) must stay at or below
//     R*(1+tolerance). Ratios are machine-independent, which makes them
//     the right gate for CI: "a cache-hit execution must stay at least
//     this much cheaper than a cold parse+plan execution" holds on any
//     runner.
//
// Exit status 1 when any gated entry regresses beyond -tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline is the BENCH_baseline.json schema.
type baseline struct {
	Note       string               `json:"note,omitempty"`
	Tolerance  float64              `json:"tolerance,omitempty"` // default when -tolerance unset
	Benchmarks map[string]*expected `json:"benchmarks"`
}

type expected struct {
	NsPerOp  float64 `json:"ns_per_op,omitempty"`
	RatioOf  string  `json:"ratio_of,omitempty"`
	MaxRatio float64 `json:"max_ratio,omitempty"`
	// Gate marks the entry as build-failing regardless of the -gate
	// regexp, so the baseline file itself documents what is enforced.
	Gate bool `json:"gate,omitempty"`
	// Tolerance overrides the -tolerance flag for this entry; 0 makes
	// max_ratio a hard ceiling (the vectorized-speedup floor uses this:
	// the ceiling already encodes all the headroom it should have).
	Tolerance *float64 `json:"tolerance,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	input := flag.String("input", "", "bench output file (default stdin)")
	baseFile := flag.String("baseline", "BENCH_baseline.json", "baseline file")
	gate := flag.String("gate", `^Serving(CacheHit|Prepared)$`, "regexp of benchmark names whose regression fails the build")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional regression before failing")
	update := flag.Bool("update", false, "rewrite the baseline's gated entries from the current run")
	flag.Parse()

	data := os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		data = f
	}
	current, err := parseBench(data)
	if err != nil {
		fail(err)
	}
	if len(current) == 0 {
		fail(fmt.Errorf("no 'ns/op' lines found in input"))
	}

	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fail(fmt.Errorf("bad -gate: %w", err))
	}

	base := &baseline{Benchmarks: map[string]*expected{}}
	if raw, err := os.ReadFile(*baseFile); err == nil {
		if err := json.Unmarshal(raw, base); err != nil {
			fail(fmt.Errorf("%s: %w", *baseFile, err))
		}
	} else if !*update {
		fail(fmt.Errorf("baseline %s unreadable (run with -update to create it): %w", *baseFile, err))
	}

	if *update {
		updateBaseline(base, current, gateRe)
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*baseFile, append(out, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("benchcheck: wrote %s (%d entries)\n", *baseFile, len(base.Benchmarks))
		return
	}

	failures := 0
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		gated := gateRe.MatchString(name) || want.Gate
		tol := *tolerance
		if want.Tolerance != nil {
			tol = *want.Tolerance
		}
		got, ok := current[name]
		if !ok {
			fmt.Printf("benchcheck: MISSING  %-40s not in current run\n", name)
			if gated {
				failures++
			}
			continue
		}
		switch {
		case want.RatioOf != "":
			ref, ok := current[want.RatioOf]
			if !ok || ref == 0 {
				fmt.Printf("benchcheck: MISSING  %-40s reference %s not in current run\n", name, want.RatioOf)
				if gated {
					failures++
				}
				continue
			}
			ratio := got / ref
			limit := want.MaxRatio * (1 + tol)
			status := "ok"
			if ratio > limit {
				status = "REGRESSED"
				if gated {
					failures++
				}
			}
			fmt.Printf("benchcheck: %-9s %-40s ratio vs %s = %.3f (limit %.3f)\n",
				status, name, want.RatioOf, ratio, limit)
		case want.NsPerOp > 0:
			delta := (got - want.NsPerOp) / want.NsPerOp
			status := "ok"
			if delta > tol {
				status = "REGRESSED"
				if gated {
					failures++
				}
			}
			fmt.Printf("benchcheck: %-9s %-40s %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
				status, name, got, want.NsPerOp, 100*delta)
		}
	}
	if failures > 0 {
		fail(fmt.Errorf("%d gated benchmark(s) regressed beyond tolerance", failures))
	}
	fmt.Println("benchcheck: all gated benchmarks within tolerance")
}

// updateBaseline refreshes ratio entries' MaxRatio and gated absolute
// entries' NsPerOp from the current run; ungated absolute entries are
// refreshed too (they are informational).
func updateBaseline(base *baseline, current map[string]float64, gateRe *regexp.Regexp) {
	for name, want := range base.Benchmarks {
		got, ok := current[name]
		if !ok {
			continue
		}
		if want.RatioOf != "" {
			if want.Tolerance != nil {
				// An explicit per-entry tolerance marks a POLICY ceiling
				// (e.g. the 1/1.3 vectorized-speedup floor), not a recorded
				// measurement; refreshing it from the current run would
				// silently rewrite the contract the gate encodes.
				fmt.Printf("benchcheck: keeping policy ceiling for %s (max_ratio %.3f)\n", name, want.MaxRatio)
				continue
			}
			if ref, ok := current[want.RatioOf]; ok && ref > 0 {
				want.MaxRatio = round3(got / ref)
			}
			continue
		}
		want.NsPerOp = got
	}
	// First run: seed absolute entries for everything parsed.
	if len(base.Benchmarks) == 0 {
		for name, got := range current {
			base.Benchmarks[name] = &expected{NsPerOp: got}
		}
	}
}

func round3(v float64) float64 {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	out, _ := strconv.ParseFloat(s, 64)
	return out
}

// parseBench reads `go test -bench` output and returns the median
// ns/op per benchmark name (sub-benchmarks keep their full slash path;
// the -cpu/GOMAXPROCS suffix is stripped).
func parseBench(f *os.File) (map[string]float64, error) {
	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[name] = append(samples[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(samples))
	for name, vals := range samples {
		sort.Float64s(vals)
		out[name] = vals[len(vals)/2]
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
	os.Exit(1)
}
