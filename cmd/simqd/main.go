// Command simqd is the similarity query server: it loads relations and
// rule sets once, then serves prepared and ad-hoc queries — and, with a
// WAL attached, concurrent writes — over HTTP/JSON. It is the
// long-lived counterpart of the cmd/simq shell — the process that makes
// the engine's plan cache, prepared queries and MVCC snapshots pay off
// under sustained mixed traffic.
//
// Usage:
//
//	simqd -addr :8077 -load words=words.rel [-rules edits.rules]
//	      [-wal data.wal] [-wal-sync=false] [-timeout 10s] [-shards 4]
//
// With -shards N every loaded relation is hash-partitioned across N
// MVCC shards: queries scatter per-shard subplans across workers and
// gather-merge the results, DML routes rows by hash, and with -wal each
// shard keeps its own WAL segment. /stats reports per-shard counters.
//
// Endpoints (wrong-method requests on any of them answer 405). The
// versioned /v1/ paths are the stable API surface; the bare legacy
// paths remain registered as aliases of the same handlers, so existing
// clients keep working:
//
//	POST /v1/query       {"query": "...", "params": [...]}      run a statement (SELECT or DML)
//	                     {"id": "p1", "params": [...]}          run a prepared statement
//	                     {"named": {"k": v}}                    named parameters
//	                     {"timeout_ms": 500}                    per-request deadline override
//	POST /v1/prepare     {"query": "... ? ..."}                 compile, returns {"id", "params", "names"}
//	POST /v1/explain     {"query": "...", "params": [...]}      plan without executing
//	POST /v1/ingest      {"relation": "words", "rows": [{"seq": "...", "vec": "[0.1,0.2]", "attrs": {...}}]}
//	                                                            batch insert (one WAL commit)
//	POST /v1/checkpoint                                         snapshot + WAL truncation on demand
//	GET  /v1/stats                                              server, plan-cache, runtime and write counters
//	GET  /healthz                                               liveness (unversioned: infrastructure probe)
//	GET  /metrics                                               Prometheus text exposition (unversioned: scrape target)
//
// Every error answers the same JSON envelope regardless of endpoint:
// {"error": "...", "code": "bad_request|timeout|precondition_failed|internal|...",
// "trace_id": "..."} — the trace_id matches the X-Trace-Id response
// header, so a client error report names the exact server-side request.
//
// Observability: every /query, /explain and /ingest response carries an
// X-Trace-Id header (also echoed as "trace_id" in the /query body).
// With -pprof the net/http/pprof handlers mount under /debug/pprof/.
// With -slow-query-ms N engine tracing turns on and any query at or
// over N milliseconds is logged to stderr as one JSON line carrying the
// statement, bound parameters, chosen plan and the executed span tree —
// the same tree EXPLAIN ANALYZE renders.
//
// With -wal every mutation (DML through /query and batches through
// /ingest) is logged before it is applied, and a restarted server
// replays the log over the -load base state. Without -wal mutations are
// in-memory only.
//
// The server shuts down gracefully on SIGINT/SIGTERM: listeners close,
// in-flight requests get a drain window, then the process exits. Each
// read request runs under a deadline (-timeout, optionally tightened
// per request); a request that exceeds it gets 504 while its abandoned
// execution finishes in the background (the engine has no cancellation
// points — a deliberate trade documented in DESIGN.md). DML requests
// are exempt: a write runs to completion so the response always tells
// the truth about whether the commit happened.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/editdp"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	var loads, ruleFiles listFlag
	flag.Var(&loads, "load", "NAME=FILE relation to load (repeatable)")
	flag.Var(&ruleFiles, "rules", "rule file to register (repeatable)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request execution deadline")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
	cacheSize := flag.Int("plan-cache", 512, "plan cache capacity (0 disables)")
	parallelism := flag.Int("parallelism", 0, "worker count for parallel plans (0 = GOMAXPROCS)")
	maxPrepared := flag.Int("max-prepared", 1024, "prepared-statement registry capacity (oldest evicted past it)")
	walPath := flag.String("wal", "", "write-ahead log file (empty = in-memory mutations only)")
	walSync := flag.Bool("wal-sync", true, "fsync the WAL on every commit (batched across concurrent commits by group commit)")
	groupCommit := flag.Bool("group-commit", true, "batch concurrent commit fsyncs into one (only meaningful with -wal-sync)")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "write a snapshot checkpoint (and truncate the WAL) this often; 0 disables the timer")
	ckptWALMB := flag.Int("checkpoint-wal-mb", 0, "checkpoint when the WAL grows past this many MiB (checked every 15s); 0 disables the size trigger")
	shards := flag.Int("shards", 1, "hash-partition each loaded relation across N shards (scatter-gather execution)")
	batchSize := flag.Int("batch-size", 256, "vectorized execution block size (0 = row-at-a-time pipeline)")
	myersKernel := flag.Bool("myers-kernel", true, "serve unit-cost distances from the bit-parallel (Myers) kernel (false = scalar DP; identical results)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log a structured JSON line (with the span tree) for queries slower than this; 0 disables. Enables engine tracing.")
	flag.Parse()
	if *shards < 1 {
		*shards = 1
	}
	// Set before the engine serves anything: query-scoped kernels capture
	// the toggle at construction and the planner keys its cache on it.
	editdp.SetBitParallel(*myersKernel)

	eng, err := buildEngine(loads, ruleFiles, *shards)
	if err != nil {
		fail(err)
	}
	eng.SetPlanCacheSize(*cacheSize)
	if *parallelism > 0 {
		eng.SetParallelism(*parallelism)
	}
	eng.SetBatchSize(*batchSize)
	var st *storage.Store
	if *walPath != "" {
		if *shards > 1 {
			// One WAL segment per shard; replay routes rows by the same
			// hash partitioner, so the shard count must stay stable across
			// restarts of the same log.
			st, err = storage.OpenSegmented(*walPath, eng.Catalog(), *shards)
		} else {
			st, err = storage.Open(*walPath, eng.Catalog())
		}
		if err != nil {
			fail(err)
		}
		st.SetSync(*walSync)
		st.SetGroupCommit(*groupCommit)
		eng.SetStore(st)
		m := st.Metrics()
		fmt.Fprintf(os.Stderr, "simqd: WAL %s (%d segments) replayed %d tx / %d ops\n",
			*walPath, st.Segments(), m.ReplayedTx, m.ReplayedOp)
	}
	stopCkpt := startCheckpointer(st, *ckptInterval, *ckptWALMB)
	defer stopCkpt()

	if *slowQueryMS > 0 {
		// The slow-query log needs the span tree, which is only collected
		// while engine tracing is on; the overhead benchmark bounds the
		// cost at a few percent on a mixed workload.
		eng.SetTracing(true)
	}
	registerProcessGauges(eng.Catalog())

	s := &server{
		eng: eng, store: st, timeout: *timeout, started: time.Now(),
		maxPrepared: *maxPrepared,
		prepared:    map[string]*query.PreparedQuery{},
		adhoc:       map[string]*query.PreparedQuery{},
		pprofOn:     *pprofOn,
		slowQueryMS: *slowQueryMS,
		slowLog:     os.Stderr,
	}

	srv := &http.Server{Addr: *addr, Handler: s.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simqd: serving on %s (%d relations, %d rule sets)\n",
		*addr, len(eng.Catalog().Names()), len(eng.RuleSets()))

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "simqd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "simqd: drain incomplete: %v\n", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "simqd: WAL close: %v\n", err)
		}
	}
}

// buildEngine loads relations and rule sets the same way cmd/simq does;
// with no -rules files a default unit-edit set "edits" over a-z is
// registered. With shards > 1 every loaded relation is hash-partitioned
// into a ShardedRelation (ids stay identical to the unsharded load —
// rows are inserted in file order under a global id allocator).
func buildEngine(loads, ruleFiles []string, shards int) (*query.Engine, error) {
	cat := relation.NewCatalog()
	for _, spec := range loads {
		eq := strings.IndexByte(spec, '=')
		if eq < 0 {
			return nil, fmt.Errorf("-load wants NAME=FILE, got %q", spec)
		}
		name, file := spec[:eq], spec[eq+1:]
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		rel, err := relation.Load(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if shards > 1 {
			tuples := rel.Tuples()
			rows := make([]relation.InsertRow, len(tuples))
			for i, t := range tuples {
				rows[i] = relation.InsertRow{Seq: t.Seq, Vec: t.Vec, Attrs: t.Attrs}
			}
			sh := relation.NewSharded(name, shards)
			sh.InsertBatch(rows)
			cat.Add(sh)
			fmt.Fprintf(os.Stderr, "simqd: loaded %s: %d tuples across %d shards\n", name, sh.Len(), shards)
			continue
		}
		cat.Add(rel)
		fmt.Fprintf(os.Stderr, "simqd: loaded %s: %d tuples\n", name, rel.Len())
	}
	eng := query.NewEngine(cat)
	if len(ruleFiles) == 0 {
		rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())
		if err := eng.RegisterRuleSet(rs); err != nil {
			return nil, err
		}
	}
	for _, file := range ruleFiles {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		rs, err := rewrite.ParseRuleSet(strings.TrimSuffix(file, ".rules"), f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := eng.RegisterRuleSet(rs); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// startCheckpointer runs the background checkpoint policy: a periodic
// snapshot every interval, plus a WAL-size trigger checked on a fixed
// 15-second cadence (a size check is one mutex-guarded counter read —
// cheap enough to poll, and a crash loses at most the poll window of
// extra replay work). Returns a stop function; no-op when the store is
// nil or both triggers are disabled.
func startCheckpointer(st *storage.Store, interval time.Duration, walMB int) func() {
	if st == nil || (interval <= 0 && walMB <= 0) {
		return func() {}
	}
	tick := interval
	if tick <= 0 || (walMB > 0 && tick > 15*time.Second) {
		tick = 15 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		last := time.Now()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			due := interval > 0 && time.Since(last) >= interval
			if !due && walMB > 0 {
				due = st.Metrics().WALBytes >= int64(walMB)<<20
			}
			if !due {
				continue
			}
			info, err := st.Checkpoint()
			if err != nil {
				fmt.Fprintf(os.Stderr, "simqd: checkpoint failed: %v\n", err)
				continue
			}
			last = time.Now()
			fmt.Fprintf(os.Stderr, "simqd: checkpoint lsn=%d rows=%d bytes=%d in %s\n",
				info.LSN, info.Rows, info.Bytes, info.Duration.Round(time.Millisecond))
		}
	}()
	return func() { close(done); wg.Wait() }
}

// server carries the shared engine plus serving state. The engine is
// safe for concurrent queries and mutations; the prepared-statement
// registry has its own lock.
type server struct {
	eng         *query.Engine
	store       *storage.Store // nil when running without a WAL
	timeout     time.Duration
	started     time.Time
	maxPrepared int
	pprofOn     bool
	slowQueryMS int       // log queries slower than this (0 = off)
	slowLog     io.Writer // slow-query JSON destination (stderr in main)

	mu       sync.RWMutex
	prepared map[string]*query.PreparedQuery
	order    []string // prepared ids, oldest first, for eviction
	nextID   int64

	// adhoc caches PreparedQueries for parameterized /query requests
	// that arrive as statement text, so repeat senders skip parse+plan
	// without an explicit /prepare round trip.
	adhocMu sync.Mutex
	adhoc   map[string]*query.PreparedQuery

	requests atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
	inFlight atomic.Int64
	writes   atomic.Int64 // /ingest requests served
	ingested atomic.Int64 // rows inserted through /ingest
	traceSeq atomic.Int64 // per-process trace-id sequence
	slowMu   sync.Mutex   // serializes slow-query log lines
}

// newTraceID mints a per-request trace id: a process-wide sequence plus
// the server start time, so ids are unique across restarts in the same
// log stream.
func (s *server) newTraceID() string {
	return fmt.Sprintf("%x-%d", s.started.UnixNano(), s.traceSeq.Add(1))
}

// trace mints the request's trace id and sets the X-Trace-Id response
// header; every handler calls it first so success and error bodies
// alike can echo the id.
func (s *server) trace(w http.ResponseWriter) string {
	id := s.newTraceID()
	w.Header().Set("X-Trace-Id", id)
	return id
}

// routes registers every endpoint with Go 1.22 method patterns, so a
// wrong-method request on a registered path answers 405 Method Not
// Allowed (with an Allow header) instead of 404. The API endpoints
// mount twice: under /v1/ (the stable, versioned contract) and at the
// bare legacy path (alias for pre-v1 clients). /healthz and /metrics
// stay unversioned on purpose — probes and scrape configs address the
// process, not the API revision.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	versioned := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
	}
	versioned("POST /query", s.handleQuery)
	versioned("POST /prepare", s.handlePrepare)
	versioned("POST /explain", s.handleExplain)
	versioned("POST /ingest", s.handleIngest)
	versioned("POST /checkpoint", s.handleCheckpoint)
	versioned("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.pprofOn {
		// The default pprof mux entries, mounted explicitly so the flag
		// gates them (importing net/http/pprof for its side effect would
		// expose them unconditionally on DefaultServeMux).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the process-wide registry in the Prometheus text
// exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// registerProcessGauges registers scrape-time callback gauges for
// runtime health and catalog populations. Safe to call more than once
// (re-registration replaces the callback).
func registerProcessGauges(cat *relation.Catalog) {
	obs.Default.GaugeFunc("simq_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	obs.Default.GaugeFunc("simq_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	obs.Default.GaugeFunc("simq_catalog_rows",
		"Visible rows across all relations in the catalog.",
		func() float64 {
			var n int
			for _, name := range cat.Names() {
				if t, ok := cat.Lookup(name); ok {
					n += t.Stats().Count
				}
			}
			return float64(n)
		})
	obs.Default.GaugeFunc("simq_catalog_vec_rows",
		"Visible rows carrying a vector column across all relations.",
		func() float64 {
			var n int
			for _, name := range cat.Names() {
				if t, ok := cat.Lookup(name); ok {
					n += t.Stats().VecCount
				}
			}
			return float64(n)
		})
	obs.Default.GaugeFunc("simq_catalog_tombstones",
		"Dead rows still occupying arena slots across all relations.",
		func() float64 {
			var n int
			for _, name := range cat.Names() {
				t, ok := cat.Lookup(name)
				if !ok {
					continue
				}
				switch r := t.(type) {
				case *relation.Relation:
					n += r.Tombstones()
				case *relation.ShardedRelation:
					for _, st := range r.ShardStats() {
						n += st.Tombstones
					}
				}
			}
			return float64(n)
		})
	obs.Default.GaugeFunc("simq_snapshot_epoch",
		"Highest commit epoch across the catalog's relations.",
		func() float64 {
			var max uint64
			for _, name := range cat.Names() {
				if t, ok := cat.Lookup(name); ok {
					if v := t.Version(); v > max {
						max = v
					}
				}
			}
			return float64(max)
		})
}

// adhocCacheMax bounds the ad-hoc statement cache; at capacity it
// resets wholesale (entries are cheap to rebuild).
const adhocCacheMax = 256

// request is the body of /query and /explain.
type request struct {
	Query     string         `json:"query,omitempty"`
	ID        string         `json:"id,omitempty"`
	Params    []any          `json:"params,omitempty"`
	Named     map[string]any `json:"named,omitempty"`
	TimeoutMS int            `json:"timeout_ms,omitempty"`
}

type queryResponse struct {
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	RowCount  int        `json:"row_count"`
	Stats     statsBody  `json:"stats"`
	ElapsedMS float64    `json:"elapsed_ms"`
	TraceID   string     `json:"trace_id"`
}

type statsBody struct {
	Candidates    int  `json:"candidates"`
	Verifications int  `json:"verifications"`
	PlanCacheHit  bool `json:"plan_cache_hit"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	traceID := s.trace(w)
	req, ok := s.decode(w, r, traceID)
	if !ok {
		return
	}
	start := time.Now()
	res, err := s.execute(r.Context(), req, false)
	if err != nil {
		s.fail(w, traceID, err)
		return
	}
	elapsed := time.Since(start)
	s.maybeLogSlow(traceID, req, res, elapsed)
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:  res.Columns,
		Rows:     res.Rows,
		RowCount: len(res.Rows),
		Stats: statsBody{
			Candidates:    res.Stats.Candidates,
			Verifications: res.Stats.Verifications,
			PlanCacheHit:  res.Stats.PlanCacheHit,
		},
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		TraceID:   traceID,
	})
}

// maybeLogSlow emits one structured JSON line for a query that ran at
// or over the -slow-query-ms threshold: the statement (or prepared id),
// its bound parameters, the plan the engine chose, and — when engine
// tracing is on, which -slow-query-ms implies — the executed span tree.
func (s *server) maybeLogSlow(traceID string, req *request, res *query.Result, elapsed time.Duration) {
	if s.slowQueryMS <= 0 || s.slowLog == nil ||
		elapsed < time.Duration(s.slowQueryMS)*time.Millisecond {
		return
	}
	line := map[string]any{
		"slow_query": true,
		"ts":         time.Now().UTC().Format(time.RFC3339Nano),
		"trace_id":   traceID,
		"elapsed_ms": float64(elapsed.Microseconds()) / 1000,
	}
	if req.Query != "" {
		line["query"] = req.Query
	}
	if req.ID != "" {
		line["prepared_id"] = req.ID
	}
	if len(req.Params) > 0 {
		line["params"] = req.Params
	}
	if len(req.Named) > 0 {
		line["named"] = req.Named
	}
	if res != nil {
		line["rows"] = len(res.Rows)
		line["plan"] = res.Plan
		line["plan_cache_hit"] = res.Stats.PlanCacheHit
		if res.Trace != nil {
			line["trace"] = res.Trace
		}
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.slowMu.Lock()
	s.slowLog.Write(append(buf, '\n'))
	s.slowMu.Unlock()
}

func (s *server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	traceID := s.trace(w)
	req, ok := s.decode(w, r, traceID)
	if !ok {
		return
	}
	if req.Query == "" {
		s.fail(w, traceID, errBad("prepare requires \"query\""))
		return
	}
	pq, err := s.eng.Prepare(req.Query)
	if err != nil {
		s.fail(w, traceID, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("p%d", s.nextID)
	s.prepared[id] = pq
	s.order = append(s.order, id)
	// Bound the registry: evict the oldest statements (their ids then
	// answer 400 and clients re-prepare), so a /prepare-per-request
	// client cannot grow server memory without limit.
	for len(s.order) > s.maxPrepared {
		delete(s.prepared, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     id,
		"params": pq.NumParams(),
		"names":  pq.ParamNames(),
	})
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	traceID := s.trace(w)
	req, ok := s.decode(w, r, traceID)
	if !ok {
		return
	}
	res, err := s.execute(r.Context(), req, true)
	if err != nil {
		s.fail(w, traceID, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": res.Plan})
}

// ingestRequest is the body of /ingest: a batch of rows for one
// relation, committed as a single WAL transaction. A row may carry a
// seq, a vec (canonical vector-literal text, e.g. "[0.1,0.2]"), or
// both.
type ingestRequest struct {
	Relation string `json:"relation"`
	Rows     []struct {
		Seq   string            `json:"seq"`
		Vec   string            `json:"vec,omitempty"`
		Attrs map[string]string `json:"attrs,omitempty"`
	} `json:"rows"`
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	traceID := s.trace(w)
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, traceID, errBad("bad JSON: "+err.Error()))
		return
	}
	if req.Relation == "" || len(req.Rows) == 0 {
		s.fail(w, traceID, errBad(`ingest requires "relation" and at least one row`))
		return
	}
	if _, ok := s.eng.Catalog().Lookup(req.Relation); !ok {
		s.fail(w, traceID, errBad(fmt.Sprintf("unknown relation %q", req.Relation)))
		return
	}
	start := time.Now()
	ops := make([]storage.Op, len(req.Rows))
	for i, row := range req.Rows {
		ops[i] = storage.Op{Kind: storage.OpInsert, Rel: req.Relation, Seq: row.Seq, Attrs: row.Attrs}
		if row.Vec != "" {
			v, err := metric.Parse(row.Vec)
			if err != nil {
				s.fail(w, traceID, errBad(fmt.Sprintf("row %d: %v", i, err)))
				return
			}
			ops[i].Vec = v
		}
	}
	var res storage.CommitResult
	var err error
	if s.store != nil {
		res, err = s.store.Commit(ops)
	} else {
		res, err = storage.Apply(s.eng.Catalog(), ops)
	}
	if err != nil {
		s.fail(w, traceID, err)
		return
	}
	ids := res.InsertedIDs
	s.writes.Add(1)
	s.ingested.Add(int64(len(ids)))
	writeJSON(w, http.StatusOK, map[string]any{
		"inserted":   len(ids),
		"ids":        ids,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleCheckpoint triggers a snapshot checkpoint on demand (the same
// operation the -checkpoint-* policy runs in the background): the
// catalog is serialized to the snapshot file and the WAL truncated, so
// the next restart replays only the post-checkpoint tail.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	traceID := s.trace(w)
	if s.store == nil {
		s.fail(w, traceID, errPrecondition("no WAL configured (-wal); nothing to checkpoint"))
		return
	}
	info, err := s.store.Checkpoint()
	if err != nil {
		s.fail(w, traceID, errInternal(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"lsn":         info.LSN,
		"relations":   info.Rels,
		"rows":        info.Rows,
		"bytes":       info.Bytes,
		"duration_ms": float64(info.Duration.Microseconds()) / 1e3,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	preparedCount := len(s.prepared)
	s.mu.RUnlock()
	s.adhocMu.Lock()
	adhocCount := len(s.adhoc)
	s.adhocMu.Unlock()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	body := map[string]any{
		"uptime_s":         time.Since(s.started).Seconds(),
		"goroutines":       runtime.NumGoroutine(),
		"heap_alloc_bytes": mem.HeapAlloc,
		"requests":         s.requests.Load(),
		"errors":           s.errors.Load(),
		"timeouts":         s.timeouts.Load(),
		"in_flight":        s.inFlight.Load(),
		"prepared":         preparedCount,
		"adhoc_statements": adhocCount,
		"plan_cache":       s.eng.CacheStats(),
		"batch_size":       s.eng.BatchSize(),
		"ingest_requests":  s.writes.Load(),
		"ingested_rows":    s.ingested.Load(),
	}
	if s.store != nil {
		body["store"] = s.store.Metrics()
		if ck := s.store.LastCheckpoint(); !ck.At.IsZero() {
			body["checkpoint"] = map[string]any{
				"lsn":         ck.LSN,
				"rows":        ck.Rows,
				"bytes":       ck.Bytes,
				"age_s":       time.Since(ck.At).Seconds(),
				"duration_ms": float64(ck.Duration.Microseconds()) / 1e3,
			}
		}
	}
	if shards := s.shardStats(); len(shards) > 0 {
		body["shards"] = shards
	}
	writeJSON(w, http.StatusOK, body)
}

// shardTableStats is the per-relation shard block of /stats.
type shardTableStats struct {
	Shards int                  `json:"shards"`
	Rows   int                  `json:"rows"`
	Per    []relation.ShardStat `json:"per_shard"`
}

// shardStats collects per-shard row/tombstone counters for every
// sharded relation in the catalog.
func (s *server) shardStats() map[string]shardTableStats {
	out := map[string]shardTableStats{}
	cat := s.eng.Catalog()
	for _, name := range cat.Names() {
		t, _ := cat.Lookup(name)
		if sh, ok := t.(*relation.ShardedRelation); ok {
			out[name] = shardTableStats{Shards: sh.NumShards(), Rows: sh.Len(), Per: sh.ShardStats()}
		}
	}
	return out
}

// execute runs one request under its deadline: a prepared statement by
// id, an ad-hoc parameterized statement (prepared on the fly), or plain
// statement text. DML requests are exempt from the abandon-on-timeout
// pattern: a write runs to completion on the request goroutine, so the
// response always reflects whether the commit happened — answering 504
// while a detached goroutine commits anyway would tell the client a
// durable write failed.
func (s *server) execute(ctx context.Context, req *request, explain bool) (*query.Result, error) {
	var run func() (*query.Result, error)
	write := false
	switch {
	case req.ID != "":
		s.mu.RLock()
		pq := s.prepared[req.ID]
		s.mu.RUnlock()
		if pq == nil {
			return nil, errBad(fmt.Sprintf("unknown prepared statement %q", req.ID))
		}
		write = pq.IsMutation()
		run = s.preparedRunner(pq, req, explain)
	case req.Query == "":
		return nil, errBad("request needs \"query\" or \"id\"")
	case len(req.Params) > 0 || len(req.Named) > 0:
		pq, err := s.adhocPrepared(req.Query)
		if err != nil {
			return nil, err
		}
		write = pq.IsMutation()
		run = s.preparedRunner(pq, req, explain)
	default:
		src := req.Query
		if explain && !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(src)), "EXPLAIN") {
			src = "EXPLAIN " + src
		}
		write = query.IsDML(src)
		run = func() (*query.Result, error) { return s.eng.Execute(src) }
	}

	if write && !explain {
		s.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		return run()
	}

	timeout := s.timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	s.requests.Add(1)
	s.inFlight.Add(1)
	type outcome struct {
		res *query.Result
		err error
	}
	done := make(chan outcome, 1) // buffered: an abandoned run must not leak its goroutine
	go func() {
		defer s.inFlight.Add(-1)
		res, err := run()
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		return out.res, out.err
	case <-ctx.Done():
		s.timeouts.Add(1)
		return nil, errTimeout(ctx.Err())
	}
}

// adhocPrepared returns a cached PreparedQuery for a parameterized
// statement sent as text, preparing and caching it on first sight.
func (s *server) adhocPrepared(src string) (*query.PreparedQuery, error) {
	s.adhocMu.Lock()
	pq := s.adhoc[src]
	s.adhocMu.Unlock()
	if pq != nil {
		return pq, nil
	}
	pq, err := s.eng.Prepare(src)
	if err != nil {
		return nil, err
	}
	s.adhocMu.Lock()
	if len(s.adhoc) >= adhocCacheMax {
		s.adhoc = make(map[string]*query.PreparedQuery)
	}
	s.adhoc[src] = pq
	s.adhocMu.Unlock()
	return pq, nil
}

// preparedRunner adapts a prepared statement plus request params into a
// runner closure.
func (s *server) preparedRunner(pq *query.PreparedQuery, req *request, explain bool) func() (*query.Result, error) {
	return func() (*query.Result, error) {
		if explain {
			var plan string
			var err error
			if len(req.Named) > 0 {
				plan, err = pq.ExplainNamed(req.Named)
			} else {
				plan, err = pq.Explain(req.Params...)
			}
			if err != nil {
				return nil, err
			}
			return &query.Result{Columns: []string{"plan"}, Rows: [][]string{{plan}}, Plan: plan}, nil
		}
		if len(req.Named) > 0 {
			return pq.ExecuteNamed(req.Named)
		}
		return pq.Execute(req.Params...)
	}
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, traceID string) (*request, bool) {
	if r.Method != http.MethodPost {
		// Unreachable behind the method-qualified mux patterns; kept as a
		// guard for handlers mounted elsewhere.
		s.fail(w, traceID, httpError{http.StatusMethodNotAllowed, "method_not_allowed", "POST required"})
		return nil, false
	}
	var req request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, traceID, errBad("bad JSON: "+err.Error()))
		return nil, false
	}
	return &req, true
}

type httpError struct {
	status int
	code   string // machine-readable envelope code
	msg    string
}

func (e httpError) Error() string { return e.msg }

func errBad(msg string) error { return httpError{http.StatusBadRequest, "bad_request", msg} }

func errTimeout(err error) error {
	return httpError{http.StatusGatewayTimeout, "timeout", "query deadline exceeded: " + err.Error()}
}

func errPrecondition(msg string) error {
	return httpError{http.StatusPreconditionFailed, "precondition_failed", msg}
}

func errInternal(err error) error {
	return httpError{http.StatusInternalServerError, "internal", err.Error()}
}

// errorBody is the uniform JSON error envelope every endpoint answers
// with: a human-readable message, a machine-readable code, and the
// request's trace id (matching the X-Trace-Id header) so a client-side
// error report names the exact server-side request.
type errorBody struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"trace_id"`
}

func (s *server) fail(w http.ResponseWriter, traceID string, err error) {
	s.errors.Add(1)
	status, code := http.StatusBadRequest, "bad_request"
	var he httpError
	if errors.As(err, &he) {
		status = he.status
		if he.code != "" {
			code = he.code
		}
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code, TraceID: traceID})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simqd: %v\n", err)
	os.Exit(1)
}
