package main

// Tests for the observability surface: the /metrics exposition, trace-id
// echoing, the slow-query log line, runtime fields in /stats, and the
// -pprof gate.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsEndpoint drives a write and a query through the server,
// scrapes /metrics, and checks the dump is valid Prometheus text
// exposition covering the query, plan-cache, WAL, index and process
// series.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	registerProcessGauges(s.eng.Catalog())
	mux := s.routes()

	if rec := do(t, mux, http.MethodPost, "/ingest", map[string]any{
		"relation": "words",
		"rows":     []map[string]any{{"seq": "couleur"}},
	}); rec.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `SELECT seq FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`,
	}); rec.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", rec.Code, rec.Body)
	}

	rec := do(t, mux, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	body := rec.Body.String()
	if err := obs.CheckExposition(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	for _, series := range []string{
		"simq_queries_total",
		"simq_query_seconds_bucket",
		`simq_plan_cache_total{event="miss"}`,
		"simq_wal_appends_total",
		"simq_wal_bytes_total",
		"simq_wal_fsync_seconds_count",
		"simq_store_commits_total",
		`simq_index_nodes_total{event="visited"}`,
		`simq_index_insert_depth_count{index="bktree"}`,
		"simq_goroutines",
		"simq_heap_alloc_bytes",
		"simq_catalog_rows",
		"simq_snapshot_epoch",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing series %q", series)
		}
	}
}

// TestMetricsTraceIDEcho pins that every /query response carries the
// request's trace id both as the X-Trace-Id header and in the body.
func TestMetricsTraceIDEcho(t *testing.T) {
	mux := newTestServer(t, "").routes()
	rec := do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `SELECT seq FROM words LIMIT 1`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", rec.Code, rec.Body)
	}
	hdr := rec.Header().Get("X-Trace-Id")
	if hdr == "" {
		t.Fatal("missing X-Trace-Id header")
	}
	var body struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != hdr {
		t.Fatalf("body trace_id %q != header %q", body.TraceID, hdr)
	}
	// Explain answers with a trace id too.
	rec = do(t, mux, http.MethodPost, "/explain", map[string]any{
		"query": `SELECT seq FROM words LIMIT 1`,
	})
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Error("/explain missing X-Trace-Id header")
	}
}

// TestMetricsSlowQueryLog exercises maybeLogSlow directly with a
// synthetic elapsed time (wall-clock thresholds are not reproducible in
// a unit test): over the threshold one structured JSON line appears
// with the statement, plan and span tree; under it, nothing.
func TestMetricsSlowQueryLog(t *testing.T) {
	s := newTestServer(t, "")
	var buf bytes.Buffer
	s.slowQueryMS = 5
	s.slowLog = &buf
	s.eng.SetTracing(true) // what -slow-query-ms implies in main()

	res, err := s.eng.Execute(`SELECT seq FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("tracing on but no trace collected")
	}
	req := &request{Query: `SELECT seq FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`}

	s.maybeLogSlow("tid-under", req, res, 2*time.Millisecond)
	if buf.Len() != 0 {
		t.Fatalf("under-threshold query logged: %s", buf.String())
	}

	s.maybeLogSlow("tid-over", req, res, 12*time.Millisecond)
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("slow log is not one line: %q", line)
	}
	var entry struct {
		SlowQuery bool            `json:"slow_query"`
		TraceID   string          `json:"trace_id"`
		ElapsedMS float64         `json:"elapsed_ms"`
		Query     string          `json:"query"`
		Rows      int             `json:"rows"`
		Plan      string          `json:"plan"`
		Trace     json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, line)
	}
	if !entry.SlowQuery || entry.TraceID != "tid-over" || entry.ElapsedMS != 12 {
		t.Errorf("slow log fields = %+v", entry)
	}
	if entry.Query != req.Query || entry.Rows != len(res.Rows) || entry.Plan == "" {
		t.Errorf("slow log payload = %+v", entry)
	}
	var span obs.Span
	if err := json.Unmarshal(entry.Trace, &span); err != nil || span.Op == "" {
		t.Errorf("slow log trace not a span tree: %v %q", err, entry.Trace)
	}

	// Threshold disabled: nothing is ever written.
	buf.Reset()
	s.slowQueryMS = 0
	s.maybeLogSlow("tid-off", req, res, time.Second)
	if buf.Len() != 0 {
		t.Errorf("slow log written with threshold disabled: %s", buf.String())
	}
}

// TestStatsRuntimeFields pins the /stats runtime additions.
func TestStatsRuntimeFields(t *testing.T) {
	mux := newTestServer(t, "").routes()
	rec := do(t, mux, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	g, ok := stats["goroutines"].(float64)
	if !ok || g < 1 {
		t.Errorf("stats goroutines = %v", stats["goroutines"])
	}
	h, ok := stats["heap_alloc_bytes"].(float64)
	if !ok || h <= 0 {
		t.Errorf("stats heap_alloc_bytes = %v", stats["heap_alloc_bytes"])
	}
}

// TestPprofGate: the profiling endpoints exist only under -pprof.
func TestPprofGate(t *testing.T) {
	s := newTestServer(t, "")
	if rec := do(t, s.routes(), http.MethodGet, "/debug/pprof/cmdline", nil); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/cmdline = %d, want 404", rec.Code)
	}
	s.pprofOn = true
	if rec := do(t, s.routes(), http.MethodGet, "/debug/pprof/cmdline", nil); rec.Code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/cmdline = %d, want 200", rec.Code)
	}
}
