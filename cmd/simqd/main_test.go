package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// newTestServer builds a server over a small in-memory engine; walDir
// non-empty attaches a WAL-backed store.
func newTestServer(t *testing.T, walDir string) *server {
	t.Helper()
	cat := relation.NewCatalog()
	words := relation.New("words")
	for _, w := range []string{"color", "colour", "colon", "cool"} {
		words.Insert(w, nil)
	}
	cat.Add(words)
	eng := query.NewEngine(cat)
	rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())
	if err := eng.RegisterRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	s := &server{
		eng: eng, timeout: 5 * time.Second, started: time.Now(),
		maxPrepared: 16,
		prepared:    map[string]*query.PreparedQuery{},
		adhoc:       map[string]*query.PreparedQuery{},
	}
	if walDir != "" {
		st, err := storage.Open(filepath.Join(walDir, "test.wal"), cat)
		if err != nil {
			t.Fatal(err)
		}
		st.SetSync(false)
		eng.SetStore(st)
		s.store = st
		t.Cleanup(func() { st.Close() })
	}
	return s
}

func do(t *testing.T, mux *http.ServeMux, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestWrongMethodIs405 pins the routing fix: a wrong-method request on
// a registered route must answer 405 Method Not Allowed (with an Allow
// header), not 404.
func TestWrongMethodIs405(t *testing.T) {
	mux := newTestServer(t, "").routes()
	cases := []struct{ method, path string }{
		{http.MethodGet, "/query"},
		{http.MethodGet, "/prepare"},
		{http.MethodGet, "/explain"},
		{http.MethodGet, "/ingest"},
		{http.MethodDelete, "/query"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/stats"},
	}
	for _, c := range cases {
		rec := do(t, mux, c.method, c.path, nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.path, rec.Code)
		}
		if rec.Header().Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.path)
		}
	}
	// Unregistered paths still 404.
	if rec := do(t, mux, http.MethodGet, "/nosuch", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET /nosuch = %d, want 404", rec.Code)
	}
}

func TestIngestQueryRoundTrip(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	mux := s.routes()

	rec := do(t, mux, http.MethodPost, "/ingest", map[string]any{
		"relation": "words",
		"rows": []map[string]any{
			{"seq": "couleur", "attrs": map[string]string{"lang": "fr"}},
			{"seq": "kolor", "attrs": map[string]string{"lang": "pl"}},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rec.Code, rec.Body)
	}
	var ing struct {
		Inserted int   `json:"inserted"`
		IDs      []int `json:"ids"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Inserted != 2 || len(ing.IDs) != 2 {
		t.Fatalf("ingest response = %+v", ing)
	}

	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `SELECT seq FROM words WHERE lang = "pl"`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", rec.Code, rec.Body)
	}
	var qres struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Rows) != 1 || qres.Rows[0][0] != "kolor" {
		t.Fatalf("query rows = %v", qres.Rows)
	}

	// DML through /query.
	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `DELETE FROM words WHERE seq SIMILAR TO "kolor" WITHIN 1 USING edits`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("DML /query = %d: %s", rec.Code, rec.Body)
	}
	var dres struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dres); err != nil {
		t.Fatal(err)
	}
	if len(dres.Rows) != 1 || dres.Rows[0][0] != "2" { // kolor + color
		t.Fatalf("delete count rows = %v", dres.Rows)
	}

	// Write metrics surface in /stats.
	rec = do(t, mux, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["ingest_requests"].(float64) != 1 || stats["ingested_rows"].(float64) != 2 {
		t.Errorf("stats write counters = %v / %v", stats["ingest_requests"], stats["ingested_rows"])
	}
	store, ok := stats["store"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing store section: %v", stats)
	}
	if store["commits"].(float64) < 2 || store["wal_bytes"].(float64) <= 0 {
		t.Errorf("store metrics = %v", store)
	}
}

func TestIngestValidation(t *testing.T) {
	mux := newTestServer(t, "").routes()
	for _, body := range []map[string]any{
		{},
		{"relation": "words"},
		{"relation": "nosuch", "rows": []map[string]any{{"seq": "x"}}},
		{"relation": "words", "rows": []map[string]any{{"vec": "not a vector"}}},
		{"relation": "words", "rows": []map[string]any{{"vec": "[]"}}},
	} {
		if rec := do(t, mux, http.MethodPost, "/ingest", body); rec.Code != http.StatusBadRequest {
			t.Errorf("ingest %v = %d, want 400", body, rec.Code)
		}
	}
}

// TestVecIngestQueryRoundTrip drives vector rows through /ingest (WAL
// attached) and runs NEAREST and WITHIN over them, prepared and ad hoc.
func TestVecIngestQueryRoundTrip(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	mux := s.routes()

	rec := do(t, mux, http.MethodPost, "/ingest", map[string]any{
		"relation": "words",
		"rows": []map[string]any{
			{"vec": "[0,0]"},
			{"vec": "[1,0]"},
			{"vec": "[0,3]"},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", rec.Code, rec.Body)
	}

	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `SELECT id, dist FROM words WHERE vec NEAREST 2 TO [0, 0] USING l2`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", rec.Code, rec.Body)
	}
	var qres struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	// The string rows (ids 0-3) have no vector, so the nearest are the
	// ingested vector rows 4 and 5.
	if len(qres.Rows) != 2 || qres.Rows[0][0] != "4" || qres.Rows[1][0] != "5" {
		t.Fatalf("NEAREST rows = %v", qres.Rows)
	}

	// Prepared vector query with a string-encoded vector parameter.
	rec = do(t, mux, http.MethodPost, "/prepare", map[string]any{
		"query": `SELECT id FROM words WHERE vec SIMILAR TO ? WITHIN ? USING l2`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/prepare = %d: %s", rec.Code, rec.Body)
	}
	var prep struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
		t.Fatal(err)
	}
	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"id": prep.ID, "params": []any{"[0,0]", 1.5},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("prepared vec /query = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Rows) != 2 {
		t.Fatalf("prepared WITHIN rows = %v", qres.Rows)
	}

	// EXPLAIN surfaces the metric and access path.
	rec = do(t, mux, http.MethodPost, "/explain", map[string]any{
		"query": `SELECT id FROM words WHERE vec NEAREST 2 TO [0, 0] USING l2`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/explain = %d: %s", rec.Code, rec.Body)
	}
	var eres struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &eres); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eres.Plan, "metric=l2") {
		t.Fatalf("explain plan lacks metric: %q", eres.Plan)
	}
}

// TestPreparedDMLOverHTTP drives a parameterized INSERT through
// /prepare + /query by id.
func TestPreparedDMLOverHTTP(t *testing.T) {
	mux := newTestServer(t, "").routes()
	rec := do(t, mux, http.MethodPost, "/prepare", map[string]any{
		"query": `INSERT INTO words (seq, lang) VALUES (?, ?)`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/prepare = %d: %s", rec.Code, rec.Body)
	}
	var prep struct {
		ID     string `json:"id"`
		Params int    `json:"params"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Params != 2 {
		t.Fatalf("prepare params = %d", prep.Params)
	}
	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"id": prep.ID, "params": []any{"farbe", "de"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("prepared DML exec = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `SELECT seq FROM words WHERE lang = "de"`,
	})
	var qres struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Rows) != 1 || qres.Rows[0][0] != "farbe" {
		t.Fatalf("prepared insert rows = %v", qres.Rows)
	}
}

// newShardedTestServer is newTestServer over a sharded "words" relation
// with a segmented WAL when walDir is set.
func newShardedTestServer(t *testing.T, walDir string, shards int) *server {
	t.Helper()
	cat := relation.NewCatalog()
	words := relation.NewSharded("words", shards)
	for _, w := range []string{"color", "colour", "colon", "cool", "dolor", "clamor"} {
		words.Insert(w, nil)
	}
	cat.Add(words)
	eng := query.NewEngine(cat)
	rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())
	if err := eng.RegisterRuleSet(rs); err != nil {
		t.Fatal(err)
	}
	s := &server{
		eng: eng, timeout: 5 * time.Second, started: time.Now(),
		maxPrepared: 16,
		prepared:    map[string]*query.PreparedQuery{},
		adhoc:       map[string]*query.PreparedQuery{},
	}
	if walDir != "" {
		st, err := storage.OpenSegmented(filepath.Join(walDir, "test.wal"), cat, shards)
		if err != nil {
			t.Fatal(err)
		}
		st.SetSync(false)
		eng.SetStore(st)
		s.store = st
		t.Cleanup(func() { st.Close() })
	}
	return s
}

// TestShardedServerRoundTrip: queries, DML and /ingest work against a
// sharded engine over HTTP, and /stats reports per-shard counters.
func TestShardedServerRoundTrip(t *testing.T) {
	s := newShardedTestServer(t, t.TempDir(), 4)
	mux := s.routes()

	rec := do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `SELECT seq, dist FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var qres struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Rows) != 4 { // color, colour, colon, dolor
		t.Fatalf("query rows = %v", qres.Rows)
	}

	rec = do(t, mux, http.MethodPost, "/explain", map[string]any{
		"query": `SELECT * FROM words WHERE seq NEAREST 2 TO "color" USING edits`,
	})
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte("GatherMerge")) {
		t.Fatalf("explain over sharded relation lacks GatherMerge: %d %s", rec.Code, rec.Body)
	}

	rec = do(t, mux, http.MethodPost, "/ingest", map[string]any{
		"relation": "words",
		"rows":     []map[string]any{{"seq": "pallor"}, {"seq": "sailor"}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}

	rec = do(t, mux, http.MethodPost, "/query", map[string]any{
		"query": `DELETE FROM words WHERE seq = "cool"`,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}

	rec = do(t, mux, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var stats struct {
		Shards map[string]struct {
			Shards int `json:"shards"`
			Rows   int `json:"rows"`
			Per    []struct {
				Rows       int `json:"rows"`
				Tombstones int `json:"tombstones"`
			} `json:"per_shard"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	ws, ok := stats.Shards["words"]
	if !ok || ws.Shards != 4 || len(ws.Per) != 4 {
		t.Fatalf("/stats shards block = %+v", stats.Shards)
	}
	rows, tombs := 0, 0
	for _, p := range ws.Per {
		rows += p.Rows
		tombs += p.Tombstones
	}
	if rows != ws.Rows || rows != 7 || tombs != 1 {
		t.Fatalf("per-shard counters inconsistent: rows=%d (want %d=7), tombstones=%d (want 1)", rows, ws.Rows, tombs)
	}
}
