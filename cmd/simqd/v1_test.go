package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doRaw is do with a verbatim (possibly malformed) body.
func doRaw(t *testing.T, mux *http.ServeMux, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// decodeEnvelope parses the uniform error envelope and asserts its
// invariants: non-empty message and code, and a trace_id matching the
// X-Trace-Id header.
func decodeEnvelope(t *testing.T, rec interface {
	Header() http.Header
}, body []byte) errorBody {
	t.Helper()
	var env errorBody
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v (%s)", err, body)
	}
	if env.Error == "" || env.Code == "" || env.TraceID == "" {
		t.Fatalf("incomplete envelope: %+v", env)
	}
	if hdr := rec.Header().Get("X-Trace-Id"); hdr != env.TraceID {
		t.Fatalf("trace_id mismatch: header %q vs body %q", hdr, env.TraceID)
	}
	return env
}

// TestV1Aliases drives every API endpoint through its /v1/ path and its
// legacy alias: both routes reach the same handler, so the responses
// must agree shape-for-shape.
func TestV1Aliases(t *testing.T) {
	s := newTestServer(t, t.TempDir())
	mux := s.routes()

	for _, prefix := range []string{"", "/v1"} {
		// /prepare → /query by id round trip under each prefix.
		rec := do(t, mux, http.MethodPost, prefix+"/prepare", map[string]any{
			"query": `SELECT seq, dist FROM words WHERE seq SIMILAR TO ? WITHIN 1 USING edits`,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s/prepare = %d: %s", prefix, rec.Code, rec.Body)
		}
		var prep struct {
			ID     string `json:"id"`
			Params int    `json:"params"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
			t.Fatal(err)
		}
		if prep.Params != 1 {
			t.Fatalf("%s/prepare params = %d, want 1", prefix, prep.Params)
		}
		rec = do(t, mux, http.MethodPost, prefix+"/query", map[string]any{
			"id": prep.ID, "params": []any{"color"},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s/query by id = %d: %s", prefix, rec.Code, rec.Body)
		}
		var qres struct {
			Rows    [][]string `json:"rows"`
			TraceID string     `json:"trace_id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
			t.Fatal(err)
		}
		if len(qres.Rows) != 3 { // color, colour, colon
			t.Fatalf("%s/query rows = %v", prefix, qres.Rows)
		}
		if qres.TraceID == "" || rec.Header().Get("X-Trace-Id") != qres.TraceID {
			t.Fatalf("%s/query trace_id = %q, header %q", prefix, qres.TraceID, rec.Header().Get("X-Trace-Id"))
		}

		// /explain returns a plan.
		rec = do(t, mux, http.MethodPost, prefix+"/explain", map[string]any{
			"query": `SELECT seq FROM words WHERE seq SIMILAR TO "color" WITHIN 1 USING edits`,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s/explain = %d: %s", prefix, rec.Code, rec.Body)
		}
		var eres struct {
			Plan string `json:"plan"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &eres); err != nil {
			t.Fatal(err)
		}
		if eres.Plan == "" {
			t.Fatalf("%s/explain returned empty plan", prefix)
		}

		// /ingest inserts one row.
		rec = do(t, mux, http.MethodPost, prefix+"/ingest", map[string]any{
			"relation": "words",
			"rows":     []map[string]any{{"seq": "couleur" + prefix}},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s/ingest = %d: %s", prefix, rec.Code, rec.Body)
		}

		// /stats parses and carries the serving counters.
		rec = do(t, mux, http.MethodGet, prefix+"/stats", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s/stats = %d", prefix, rec.Code)
		}
		var stats map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
			t.Fatal(err)
		}
		if _, ok := stats["requests"]; !ok {
			t.Fatalf("%s/stats missing requests counter: %v", prefix, stats)
		}

		// /checkpoint works under both prefixes (store attached).
		rec = do(t, mux, http.MethodPost, prefix+"/checkpoint", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s/checkpoint = %d: %s", prefix, rec.Code, rec.Body)
		}
	}

	// Wrong-method requests on v1 paths answer 405 like the legacy ones.
	for _, path := range []string{"/v1/query", "/v1/prepare", "/v1/stats"} {
		method := http.MethodGet
		if path == "/v1/stats" {
			method = http.MethodPost
		}
		if rec := do(t, mux, method, path, nil); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
		}
	}
}

// TestErrorEnvelope pins the uniform error contract across endpoints
// and API versions: every handler failure answers
// {"error","code","trace_id"} with the trace id echoed in X-Trace-Id.
func TestErrorEnvelope(t *testing.T) {
	s := newTestServer(t, "") // no WAL: /checkpoint hits its precondition
	mux := s.routes()

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		raw    string // when non-empty, sent verbatim instead of body
		status int
		code   string
	}{
		{name: "parse error", method: http.MethodPost, path: "/query",
			body: map[string]any{"query": "SELEKT nope"}, status: 400, code: "bad_request"},
		{name: "parse error v1", method: http.MethodPost, path: "/v1/query",
			body: map[string]any{"query": "SELEKT nope"}, status: 400, code: "bad_request"},
		{name: "missing query", method: http.MethodPost, path: "/v1/query",
			body: map[string]any{}, status: 400, code: "bad_request"},
		{name: "unknown prepared id", method: http.MethodPost, path: "/v1/query",
			body: map[string]any{"id": "p999"}, status: 400, code: "bad_request"},
		{name: "prepare without query", method: http.MethodPost, path: "/v1/prepare",
			body: map[string]any{}, status: 400, code: "bad_request"},
		{name: "explain bad statement", method: http.MethodPost, path: "/v1/explain",
			body: map[string]any{"query": "EXPLAIN EXPLAIN"}, status: 400, code: "bad_request"},
		{name: "ingest unknown relation", method: http.MethodPost, path: "/v1/ingest",
			body:   map[string]any{"relation": "nosuch", "rows": []map[string]any{{"seq": "x"}}},
			status: 400, code: "bad_request"},
		{name: "ingest bad JSON", method: http.MethodPost, path: "/ingest",
			raw: "{not json", status: 400, code: "bad_request"},
		{name: "checkpoint without WAL", method: http.MethodPost, path: "/checkpoint",
			status: 412, code: "precondition_failed"},
		{name: "checkpoint without WAL v1", method: http.MethodPost, path: "/v1/checkpoint",
			status: 412, code: "precondition_failed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := do(t, mux, c.method, c.path, c.body)
			if c.raw != "" {
				rec = doRaw(t, mux, c.method, c.path, c.raw)
			}
			if rec.Code != c.status {
				t.Fatalf("status = %d, want %d: %s", rec.Code, c.status, rec.Body)
			}
			env := decodeEnvelope(t, rec, rec.Body.Bytes())
			if env.Code != c.code {
				t.Errorf("code = %q, want %q", env.Code, c.code)
			}
		})
	}

	// Distinct requests get distinct trace ids.
	r1 := do(t, mux, http.MethodPost, "/v1/query", map[string]any{"query": "SELEKT"})
	r2 := do(t, mux, http.MethodPost, "/v1/query", map[string]any{"query": "SELEKT"})
	e1 := decodeEnvelope(t, r1, r1.Body.Bytes())
	e2 := decodeEnvelope(t, r2, r2.Body.Bytes())
	if e1.TraceID == e2.TraceID {
		t.Errorf("trace ids not unique: %q", e1.TraceID)
	}
}

// TestV1DistanceJoinOverHTTP runs an ON dist(...) join through the v1
// surface end to end: EXPLAIN surfaces a join operator and the result
// matches the engine's row count.
func TestV1DistanceJoinOverHTTP(t *testing.T) {
	mux := newTestServer(t, "").routes()
	stmt := `SELECT a.seq, b.seq FROM words a, words b ON dist(a.seq, b.seq) <= 1 USING edits WHERE a.id != b.id`

	rec := do(t, mux, http.MethodPost, "/v1/explain", map[string]any{"query": stmt})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/explain = %d: %s", rec.Code, rec.Body)
	}
	var eres struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &eres); err != nil {
		t.Fatal(err)
	}
	if !containsAny(eres.Plan, "IndexJoin(", "NestedLoopJoin(", "PartitionJoin(") {
		t.Fatalf("join plan lacks a join operator: %q", eres.Plan)
	}

	rec = do(t, mux, http.MethodPost, "/v1/query", map[string]any{"query": stmt})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/query = %d: %s", rec.Code, rec.Body)
	}
	var qres struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	// color↔colour and color↔colon within one edit, both directions.
	if len(qres.Rows) != 4 {
		t.Fatalf("join rows = %v", qres.Rows)
	}
}
