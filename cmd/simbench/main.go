// Command simbench regenerates the experiment tables and figure series
// documented in EXPERIMENTS.md.
//
// Usage:
//
//	simbench              # run every experiment at full size
//	simbench -quick       # run every experiment at reduced size
//	simbench -exp c12     # run one experiment (f1..f7, c8..c12, ct1)
//	simbench -list        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced data sizes (seconds instead of minutes)")
	one := flag.String("exp", "", "run a single experiment id (f1..f7, c8..c12, ct1)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	exp.Quick = *quick
	registry := exp.Registry()

	if *list {
		for _, e := range registry {
			fmt.Println(e.ID)
		}
		return
	}

	want := strings.ToLower(strings.TrimSpace(*one))
	found := false
	for _, e := range registry {
		if want != "" && e.ID != want {
			continue
		}
		found = true
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
	}
	if !found {
		fmt.Fprintf(os.Stderr, "simbench: unknown experiment %q (use -list)\n", want)
		os.Exit(1)
	}
}
