// Command simq is the interactive shell (and one-shot runner) for the
// similarity query language.
//
// Usage:
//
//	simq -load words=words.rel -rules edits.rules \
//	     -e 'SELECT * FROM words WHERE seq SIMILAR TO "colour" WITHIN 2 USING edits'
//
//	simq -load words=words.rel        # REPL on stdin
//
// Rule files use the textual rule language of internal/rewrite; when no
// -rules file is given, a default rule set "edits" (unit edits over
// a-z) is registered. The REPL accepts one statement per line plus the
// meta commands \tables, \rules and \quit. Statements may use N-way
// FROM lists, ORDER BY dist [ASC|DESC] and LIMIT; EXPLAIN prints the
// physical operator tree the cost-based planner chose.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/rewrite"
)

type loadList []string

func (l *loadList) String() string     { return strings.Join(*l, ",") }
func (l *loadList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	var loads loadList
	flag.Var(&loads, "load", "NAME=FILE relation to load (repeatable)")
	var ruleFiles loadList
	flag.Var(&ruleFiles, "rules", "rule file to register (repeatable)")
	stmt := flag.String("e", "", "execute one statement and exit")
	batchSize := flag.Int("batch-size", 256, "vectorized execution block size (0 = row-at-a-time pipeline)")
	flag.Parse()

	cat := relation.NewCatalog()
	for _, spec := range loads {
		eq := strings.IndexByte(spec, '=')
		if eq < 0 {
			fail(fmt.Errorf("-load wants NAME=FILE, got %q", spec))
		}
		name, file := spec[:eq], spec[eq+1:]
		f, err := os.Open(file)
		if err != nil {
			fail(err)
		}
		rel, err := relation.Load(name, f)
		f.Close()
		if err != nil {
			fail(err)
		}
		cat.Add(rel)
		fmt.Fprintf(os.Stderr, "loaded %s: %d tuples\n", name, rel.Len())
	}

	eng := query.NewEngine(cat)
	eng.SetBatchSize(*batchSize)
	if len(ruleFiles) == 0 {
		rs := rewrite.MustRuleSet("edits", rewrite.UnitEdits("abcdefghijklmnopqrstuvwxyz").Rules())
		if err := eng.RegisterRuleSet(rs); err != nil {
			fail(err)
		}
	}
	for _, file := range ruleFiles {
		f, err := os.Open(file)
		if err != nil {
			fail(err)
		}
		rs, err := rewrite.ParseRuleSet(strings.TrimSuffix(file, ".rules"), f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := eng.RegisterRuleSet(rs); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "registered rule set %s (%d rules)\n", rs.Name(), rs.Len())
	}

	if *stmt != "" {
		if err := run(eng, *stmt); err != nil {
			fail(err)
		}
		return
	}

	fmt.Fprintln(os.Stderr, `simq: enter statements, or \tables, \rules, \quit`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(os.Stderr, "simq> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, n := range cat.Names() {
				r, _ := cat.Lookup(n)
				fmt.Printf("%s (%d tuples)\n", n, r.Len())
			}
			continue
		case line == `\rules`:
			for _, n := range eng.RuleSets() {
				fmt.Println(n)
			}
			continue
		}
		if err := run(eng, line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

func run(eng *query.Engine, stmt string) error {
	res, err := eng.Execute(stmt)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, "\t"))
	}
	fmt.Fprintf(os.Stderr, "(%d rows; %d candidates, %d verifications; plan:\n%s)\n",
		len(res.Rows), res.Stats.Candidates, res.Stats.Verifications, indent(res.Plan, "  "))
	return nil
}

// indent prefixes every line of a rendered plan tree.
func indent(s, prefix string) string {
	return prefix + strings.ReplaceAll(s, "\n", "\n"+prefix)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simq: %v\n", err)
	os.Exit(1)
}
