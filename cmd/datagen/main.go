// Command datagen writes synthetic data sets in the relation text codec
// used by cmd/simq and the examples.
//
// Usage:
//
//	datagen -kind words   -count 10000 -out words.rel
//	datagen -kind stocks  -count 1067 -length 128 -out stocks.rel
//	datagen -kind vectors -count 10000 -dim 64 -out vectors.rel
//
// The words generator plants near-duplicates (a quarter of the words
// are 1-2 edits of earlier words) so similarity queries have answers;
// the stocks generator emits the companion paper's random-walk family,
// one series per line with values comma-separated in the seq column;
// the vectors generator emits float-vector rows drawn from a small set
// of Gaussian clusters (so NEAREST and WITHIN queries have natural
// neighbourhoods), carried in the vec column with the centroid index
// in a "cluster" attribute.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/metric"
	"repro/internal/relation"
	"repro/internal/seq"
	"repro/internal/stock"
)

func main() {
	kind := flag.String("kind", "words", "data set kind: words | stocks | vectors")
	count := flag.Int("count", 1000, "number of tuples")
	length := flag.Int("length", 128, "series length (stocks only)")
	dim := flag.Int("dim", 64, "vector dimension (vectors only)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	var rel *relation.Relation
	switch *kind {
	case "words":
		rel = words(*seed, *count)
	case "stocks":
		rel = stocks(*seed, *count, *length)
	case "vectors":
		rel = vectors(*seed, *count, *dim)
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
	if err := rel.Store(w); err != nil {
		fail(err)
	}
}

func words(seedVal int64, count int) *relation.Relation {
	a := seq.MustAlphabet("abcdefghij")
	rng := rand.New(rand.NewSource(seedVal))
	rel := relation.New("words")
	var made []string
	for len(made) < count {
		var w string
		if len(made) > 0 && rng.Intn(4) == 0 {
			w = a.RandomEdits(rng, made[rng.Intn(len(made))], 1+rng.Intn(2))
		} else {
			w = a.Random(rng, 4+rng.Intn(11))
		}
		if w == "" {
			continue
		}
		made = append(made, w)
		rel.Insert(w, map[string]string{"n": strconv.Itoa(len(made))})
	}
	return rel
}

func stocks(seedVal int64, count, length int) *relation.Relation {
	rel := relation.New("stocks")
	for i, s := range stock.Walks(seedVal, count, length) {
		parts := make([]string, len(s))
		for j, v := range s {
			parts[j] = strconv.FormatFloat(v, 'f', 3, 64)
		}
		rel.Insert(strings.Join(parts, ","), map[string]string{"ticker": fmt.Sprintf("S%04d", i)})
	}
	return rel
}

// vectors draws rows from 16 Gaussian clusters: centroids uniform in
// [-1,1)^dim, members centroid + N(0, 0.1) per component. Clustered
// data gives NEAREST queries natural neighbourhoods and keeps VP-tree
// pruning honest (uniform data at high dimension prunes nothing).
func vectors(seedVal int64, count, dim int) *relation.Relation {
	if dim < 1 {
		fail(fmt.Errorf("vectors: -dim must be >= 1, got %d", dim))
	}
	rng := rand.New(rand.NewSource(seedVal))
	const clusters = 16
	centroids := make([][]float64, clusters)
	for i := range centroids {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64()*2 - 1
		}
		centroids[i] = c
	}
	rel := relation.New("vectors")
	for i := 0; i < count; i++ {
		k := rng.Intn(clusters)
		v := make(metric.Vector, dim)
		for j, c := range centroids[k] {
			v[j] = float32(c + rng.NormFloat64()*0.1)
		}
		rel.InsertOne(relation.InsertRow{Vec: v, Attrs: map[string]string{"cluster": strconv.Itoa(k)}})
	}
	return rel
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
