// Command datagen writes synthetic data sets in the relation text codec
// used by cmd/simq and the examples.
//
// Usage:
//
//	datagen -kind words  -count 10000 -out words.rel
//	datagen -kind stocks -count 1067 -length 128 -out stocks.rel
//
// The words generator plants near-duplicates (a quarter of the words
// are 1-2 edits of earlier words) so similarity queries have answers;
// the stocks generator emits the companion paper's random-walk family,
// one series per line with values comma-separated in the seq column.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/seq"
	"repro/internal/stock"
)

func main() {
	kind := flag.String("kind", "words", "data set kind: words | stocks")
	count := flag.Int("count", 1000, "number of tuples")
	length := flag.Int("length", 128, "series length (stocks only)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	var rel *relation.Relation
	switch *kind {
	case "words":
		rel = words(*seed, *count)
	case "stocks":
		rel = stocks(*seed, *count, *length)
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
	if err := rel.Store(w); err != nil {
		fail(err)
	}
}

func words(seedVal int64, count int) *relation.Relation {
	a := seq.MustAlphabet("abcdefghij")
	rng := rand.New(rand.NewSource(seedVal))
	rel := relation.New("words")
	var made []string
	for len(made) < count {
		var w string
		if len(made) > 0 && rng.Intn(4) == 0 {
			w = a.RandomEdits(rng, made[rng.Intn(len(made))], 1+rng.Intn(2))
		} else {
			w = a.Random(rng, 4+rng.Intn(11))
		}
		if w == "" {
			continue
		}
		made = append(made, w)
		rel.Insert(w, map[string]string{"n": strconv.Itoa(len(made))})
	}
	return rel
}

func stocks(seedVal int64, count, length int) *relation.Relation {
	rel := relation.New("stocks")
	for i, s := range stock.Walks(seedVal, count, length) {
		parts := make([]string, len(s))
		for j, v := range s {
			parts[j] = strconv.FormatFloat(v, 'f', 3, 64)
		}
		rel.Insert(strings.Join(parts, ","), map[string]string{"ticker": fmt.Sprintf("S%04d", i)})
	}
	return rel
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
