package repro

import (
	"math/rand"
	"testing"

	"repro/internal/editdp"
	"repro/internal/metric"
)

// kernelWords is the shared workload for the kernel gate: one fixed
// 32-byte query verified against 512 random words of 8..64 bytes — the
// single-word regime every BK-tree/trie traversal and compiled filter
// lives in. Random words share almost no affixes, so the scalar DP
// cannot hide behind its prefix/suffix stripping.
func kernelWords() (string, []string) {
	rng := rand.New(rand.NewSource(99))
	const alpha = "abcdefgh"
	gen := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	query := gen(32)
	words := make([]string, 512)
	for i := range words {
		words[i] = gen(8 + rng.Intn(57))
	}
	return query, words
}

// BenchmarkKernelScalarLevenshtein — the scalar two-row DP over the
// kernel workload; the denominator of the KernelMyersVsScalar gate.
func BenchmarkKernelScalarLevenshtein(b *testing.B) {
	query, words := kernelWords()
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			sink += editdp.Levenshtein(query, w)
		}
	}
	benchSink = sink
}

// BenchmarkKernelMyersVsScalar — the query-scoped bit-parallel kernel
// on the identical workload (PEQ built once per query, as the indexes
// and compiled filters use it). BENCH_baseline.json gates this at
// max_ratio 0.5 of KernelScalarLevenshtein: at least 2x faster on
// <=64-byte words, with zero tolerance — the ceiling is policy.
func BenchmarkKernelMyersVsScalar(b *testing.B) {
	query, words := kernelWords()
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp := editdp.NewQueryDP(query)
		for _, w := range words {
			sink += dp.Distance(w)
		}
	}
	benchSink = sink
}

var benchSink int

// kernelVecs is the shared workload for the vector kernel gates: one
// fixed query against 512 random candidates, all of the given
// dimension. Components are uniform in [-1,1), so distances
// concentrate around sqrt(2d/3) — far above the tight radius the
// early-abandon benchmark probes with.
func kernelVecs(dim int) (metric.Vector, []metric.Vector) {
	rng := rand.New(rand.NewSource(7))
	gen := func() metric.Vector {
		v := make(metric.Vector, dim)
		for i := range v {
			v[i] = float32(rng.Float64()*2 - 1)
		}
		return v
	}
	q := gen()
	cands := make([]metric.Vector, 512)
	for i := range cands {
		cands[i] = gen()
	}
	return q, cands
}

// BenchmarkKernelVecL2 — the batch L2 kernel over 512 64-dimensional
// candidates, the column shape the vectorized filter and nearest-k
// operators feed it. Informational ns_per_op plus the denominator of
// the KernelVecL2Abandon gate's sibling workload.
func BenchmarkKernelVecL2(b *testing.B) {
	m, _ := metric.Lookup("l2")
	q, cands := kernelVecs(64)
	out := make([]float64, len(cands))
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metric.DistBatch(m, q, cands, out)
		sink += out[0]
	}
	benchSinkF = sink
}

// BenchmarkKernelVecCosine — the batch cosine kernel on the identical
// workload. Cosine has no early-abandon form, so the batch kernel is
// its entire fast path; the entry is informational (warn-only).
func BenchmarkKernelVecCosine(b *testing.B) {
	m, _ := metric.Lookup("cosine")
	q, cands := kernelVecs(64)
	out := make([]float64, len(cands))
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metric.DistBatch(m, q, cands, out)
		sink += out[0]
	}
	benchSinkF = sink
}

// BenchmarkKernelVecL2Full — full 384-dimensional L2 distances, the
// denominator of the early-abandon gate.
func BenchmarkKernelVecL2Full(b *testing.B) {
	m, _ := metric.Lookup("l2")
	q, cands := kernelVecs(384)
	out := make([]float64, len(cands))
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metric.DistBatch(m, q, cands, out)
		sink += out[0]
	}
	benchSinkF = sink
}

// BenchmarkKernelVecL2Abandon — the early-abandoning Within test on
// the identical 384-dimensional workload with a radius nothing
// matches: partial sums cross the squared budget at the first 64-lane
// block check, so each candidate does ~1/6 of the full work.
// BENCH_baseline.json gates this as a ratio of KernelVecL2Full — the
// abandon path must stay meaningfully cheaper than computing full
// distances, else the WITHIN scan path has silently lost its pruning.
func BenchmarkKernelVecL2Abandon(b *testing.B) {
	m, _ := metric.Lookup("l2")
	q, cands := kernelVecs(384)
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			d, _ := metric.Within(m, q, c, 0.5)
			sink += d
		}
	}
	benchSinkF = sink
}

var benchSinkF float64
