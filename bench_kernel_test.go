package repro

import (
	"math/rand"
	"testing"

	"repro/internal/editdp"
)

// kernelWords is the shared workload for the kernel gate: one fixed
// 32-byte query verified against 512 random words of 8..64 bytes — the
// single-word regime every BK-tree/trie traversal and compiled filter
// lives in. Random words share almost no affixes, so the scalar DP
// cannot hide behind its prefix/suffix stripping.
func kernelWords() (string, []string) {
	rng := rand.New(rand.NewSource(99))
	const alpha = "abcdefgh"
	gen := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	query := gen(32)
	words := make([]string, 512)
	for i := range words {
		words[i] = gen(8 + rng.Intn(57))
	}
	return query, words
}

// BenchmarkKernelScalarLevenshtein — the scalar two-row DP over the
// kernel workload; the denominator of the KernelMyersVsScalar gate.
func BenchmarkKernelScalarLevenshtein(b *testing.B) {
	query, words := kernelWords()
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			sink += editdp.Levenshtein(query, w)
		}
	}
	benchSink = sink
}

// BenchmarkKernelMyersVsScalar — the query-scoped bit-parallel kernel
// on the identical workload (PEQ built once per query, as the indexes
// and compiled filters use it). BENCH_baseline.json gates this at
// max_ratio 0.5 of KernelScalarLevenshtein: at least 2x faster on
// <=64-byte words, with zero tolerance — the ceiling is policy.
func BenchmarkKernelMyersVsScalar(b *testing.B) {
	query, words := kernelWords()
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp := editdp.NewQueryDP(query)
		for _, w := range words {
			sink += dp.Distance(w)
		}
	}
	benchSink = sink
}

var benchSink int
